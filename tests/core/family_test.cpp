#include "core/family.hpp"

#include <gtest/gtest.h>

#include "re/zero_round.hpp"

namespace relb::core {
namespace {

using re::Count;
using re::wordFromLabels;

TEST(Family, NodeConstraintMatchesSection31) {
  const auto p = familyProblem(6, 4, 2);
  // M^{6-2} X^2, A^4 X^2, P O^5.
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kM, kM, kM, kM, kX, kX}, 5)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kA, kA, kA, kA, kX, kX}, 5)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kP, kO, kO, kO, kO, kO}, 5)));
  // Wrong multiplicities rejected.
  EXPECT_FALSE(
      p.node.containsWord(wordFromLabels({kM, kM, kM, kX, kX, kX}, 5)));
  EXPECT_FALSE(
      p.node.containsWord(wordFromLabels({kA, kA, kA, kX, kX, kX}, 5)));
  EXPECT_FALSE(
      p.node.containsWord(wordFromLabels({kP, kP, kO, kO, kO, kO}, 5)));
}

TEST(Family, EdgeConstraintMatchesSection31) {
  const auto p = familyProblem(4, 3, 1);
  const auto allowed = [&](re::Label a, re::Label b) {
    return p.edge.containsWord(wordFromLabels({a, b}, 5));
  };
  // "M is not compatible with M, A is not compatible with A, P is not
  // compatible with P, A or O, while anything else is allowed."
  for (re::Label a = 0; a < 5; ++a) {
    for (re::Label b = a; b < 5; ++b) {
      const bool forbidden = (a == kM && b == kM) || (a == kA && b == kA) ||
                             (a == kP && (b == kP || b == kA || b == kO)) ||
                             (b == kP && (a == kP || a == kA || a == kO));
      EXPECT_EQ(allowed(a, b), !forbidden) << int(a) << "," << int(b);
    }
  }
}

TEST(Family, MisIsKEqualsZeroCase) {
  // For x = 0 and a = Delta the M and P configurations are exactly the MIS
  // encoding; only the A configuration is extra.
  const auto p = familyProblem(3, 3, 0);
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kM, kM, kM}, 5)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kP, kO, kO}, 5)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({kM, kM}, 5)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({kP, kP}, 5)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({kP, kO}, 5)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({kO, kO}, 5)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({kM, kP}, 5)));
}

TEST(Family, ParameterValidation) {
  EXPECT_THROW(familyProblem(4, 5, 0), re::Error);
  EXPECT_THROW(familyProblem(4, 0, 5), re::Error);
  EXPECT_THROW(familyProblem(4, -1, 0), re::Error);
  EXPECT_NO_THROW(familyProblem(4, 0, 0));
  EXPECT_NO_THROW(familyProblem(4, 4, 4));
}

TEST(Family, HugeDelta) {
  const Count delta = Count{1} << 40;
  const auto p = familyProblem(delta, delta / 2, 123);
  re::Word w(5, 0);
  w[kM] = delta - 123;
  w[kX] = 123;
  EXPECT_TRUE(p.node.containsWord(w));
  w[kM] -= 1;
  w[kO] = 1;
  EXPECT_FALSE(p.node.containsWord(w));
}

TEST(FamilyPlus, NodeConstraintMatchesLemma8) {
  const auto p = familyPlusProblem(6, 4, 1);
  // M^{6-1-1} X^2, A^{4-1-1} X^{6-4+1+1}, P O^5, C^{6-1} X^1.
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kM, kM, kM, kM, kX, kX}, 6)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kA, kA, kX, kX, kX, kX}, 6)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kP, kO, kO, kO, kO, kO}, 6)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({kC, kC, kC, kC, kC, kX}, 6)));
  EXPECT_FALSE(
      p.node.containsWord(wordFromLabels({kC, kC, kC, kC, kX, kX}, 6)));
}

TEST(FamilyPlus, CBehavesLikeASecondA) {
  const auto p = familyPlusProblem(5, 3, 1);
  const auto allowed = [&](re::Label a, re::Label b) {
    return p.edge.containsWord(wordFromLabels({a, b}, 6));
  };
  EXPECT_FALSE(allowed(kC, kC));
  EXPECT_FALSE(allowed(kC, kP));
  EXPECT_TRUE(allowed(kC, kM));
  EXPECT_TRUE(allowed(kC, kO));
  EXPECT_TRUE(allowed(kC, kA));
  EXPECT_TRUE(allowed(kC, kX));
  // The Pi edge constraint is untouched for the old labels.
  EXPECT_FALSE(allowed(kM, kM));
  EXPECT_FALSE(allowed(kA, kA));
  EXPECT_FALSE(allowed(kP, kO));
}

TEST(FamilyPlus, ParameterValidation) {
  EXPECT_THROW(familyPlusProblem(4, 0, 0), re::Error);   // a < x + 1
  EXPECT_THROW(familyPlusProblem(4, 4, 4), re::Error);   // x + 1 > delta
  EXPECT_NO_THROW(familyPlusProblem(4, 1, 0));
}

TEST(Family, SpeedupParamsRecurrence) {
  const FamilyParams next = speedupParams({100, 50, 3});
  EXPECT_EQ(next.a, (50 - 7) / 2);
  EXPECT_EQ(next.x, 4);
  EXPECT_EQ(next.delta, 100);
}

TEST(Family, ZeroRoundSolvabilityBoundary) {
  // Lemma 12: not solvable for a >= 1 and x <= Delta-1...
  EXPECT_FALSE(re::zeroRoundSolvableSymmetricPorts(familyProblem(4, 2, 1)));
  EXPECT_FALSE(re::zeroRoundSolvableSymmetricPorts(familyProblem(4, 1, 3)));
  // ...and solvable outside that range: a = 0 gives the all-X configuration,
  // x = Delta gives X^Delta as the M configuration.
  EXPECT_TRUE(re::zeroRoundSolvableSymmetricPorts(familyProblem(4, 0, 1)));
  EXPECT_TRUE(re::zeroRoundSolvableSymmetricPorts(familyProblem(4, 2, 4)));
}

}  // namespace
}  // namespace relb::core
