// End-to-end cascade: starting from a real dominating set on a concrete
// tree, walk the speedup chain *on the graph itself* -- embed the
// Pi(a_i, x_i) solution into Pi+(a_i, x_i) (both zero-round moves) and apply
// the Lemma 9 conversion to land in Pi(a_{i+1}, x_{i+1}), repeating until
// the parameters leave the Corollary 10 range.  Every intermediate labeling
// is validated by the generic checker.  This realizes the entire
// lower-bound chain as executable zero-round reductions.
#include <gtest/gtest.h>

#include "core/conversions.hpp"
#include "core/sequence.hpp"

namespace relb::core {
namespace {

class CascadeTest : public ::testing::TestWithParam<int> {};

TEST_P(CascadeTest, FullChainOnConcreteTree) {
  const int delta = GetParam();
  const auto g = local::completeRegularTree(delta, 2);
  ASSERT_TRUE(g.edgeColoringIsProper(delta));

  // Greedy MIS -> Lemma 5 -> Pi(delta, 0).
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  local::EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()),
                                     0);
  auto labeling = lemma5Labeling(g, inSet, orientation, delta, 0);

  re::Count a = delta;
  re::Count x = 0;
  ASSERT_TRUE(
      local::checkLabeling(g, familyProblem(delta, a, x), labeling).ok());

  int conversions = 0;
  while (2 * x + 1 <= a && x + 1 <= a && x + 1 <= delta) {
    // Zero-round embed Pi(a, x) -> Pi+(a, x).
    const auto plus = plusFromFamilyLabeling(g, labeling, delta, a, x);
    const auto plusCheck =
        local::checkLabeling(g, familyPlusProblem(delta, a, x), plus);
    ASSERT_TRUE(plusCheck.ok())
        << "step " << conversions << " plus: "
        << (plusCheck.messages.empty() ? "" : plusCheck.messages.front());
    // Zero-round Lemma 9 conversion.
    labeling = lemma9Convert(g, plus, delta, a, x);
    const FamilyParams next = speedupParams({delta, a, x});
    a = next.a;
    x = next.x;
    const auto check =
        local::checkLabeling(g, familyProblem(delta, a, x), labeling);
    ASSERT_TRUE(check.ok())
        << "step " << conversions << " target (a=" << a << ", x=" << x
        << "): " << (check.messages.empty() ? "" : check.messages.front());
    ++conversions;
    if (a < 1) break;
  }
  // The number of conversions realized on the graph matches the abstract
  // chain length (up to the final boundary step, where the abstract chain
  // stops early to keep the last problem hard).
  const Chain chain = exactChain(delta, 0);
  EXPECT_GE(conversions, chain.length());
  EXPECT_GT(conversions, 0);
}

INSTANTIATE_TEST_SUITE_P(Deltas, CascadeTest,
                         ::testing::Values(3, 4, 6, 8, 12, 16, 24, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "delta" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb::core
