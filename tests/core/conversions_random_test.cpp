// Lemma 9 and the synthetic generators on *irregular* trees: random trees,
// stars, and brooms have many boundary (non-full-degree) nodes, which the
// conversions must label edge-consistently even where the node constraint
// is vacuous.
#include <gtest/gtest.h>

#include <random>

#include "core/conversions.hpp"
#include "support/env_seed.hpp"

namespace relb::core {
namespace {

struct RandomConvCase {
  int n;
  int maxDegree;
  re::Count a;
  re::Count x;
  unsigned seed;
};

class Lemma9RandomTrees : public ::testing::TestWithParam<RandomConvCase> {};

TEST_P(Lemma9RandomTrees, ConvertsOnIrregularTrees) {
  const auto param = GetParam();
  const unsigned seed = testsupport::effectiveSeed(param.seed);
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const re::Count delta = param.maxDegree;
  ASSERT_TRUE(g.edgeColoringIsProper(param.maxDegree));

  const auto plus = syntheticPlusLabelingAlternating(g, delta, param.a,
                                                     param.x);
  const auto plusCheck =
      local::checkLabeling(g, familyPlusProblem(delta, param.a, param.x),
                           plus);
  ASSERT_TRUE(plusCheck.ok())
      << (plusCheck.messages.empty() ? "" : plusCheck.messages.front());

  const auto converted = lemma9Convert(g, plus, delta, param.a, param.x);
  const re::Count aNew = (param.a - 2 * param.x - 1) / 2;
  const auto check = local::checkLabeling(
      g, familyProblem(delta, aNew, param.x + 1), converted);
  EXPECT_TRUE(check.ok())
      << (check.messages.empty() ? "" : check.messages.front());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma9RandomTrees,
    ::testing::Values(RandomConvCase{60, 5, 5, 1, 1},
                      RandomConvCase{120, 6, 5, 1, 2},
                      RandomConvCase{120, 6, 6, 2, 3},
                      RandomConvCase{200, 8, 7, 2, 4},
                      RandomConvCase{200, 8, 8, 3, 5},
                      RandomConvCase{300, 10, 9, 1, 6},
                      RandomConvCase{80, 4, 3, 1, 7},
                      RandomConvCase{150, 12, 11, 5, 8}),
    [](const ::testing::TestParamInfo<RandomConvCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.maxDegree) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x) + "s" +
             std::to_string(info.param.seed);
    });

TEST(Lemma9Pathological, StarAndBroom) {
  for (const auto& g : {local::starGraph(9), local::broomGraph(10, 8)}) {
    const re::Count delta = g.maxDegree();
    const re::Count a = delta - 1, x = 1;
    if (2 * x + 1 > a) continue;
    const auto plus = syntheticPlusLabelingAlternating(g, delta, a, x);
    ASSERT_TRUE(
        local::checkLabeling(g, familyPlusProblem(delta, a, x), plus).ok());
    const auto converted = lemma9Convert(g, plus, delta, a, x);
    const re::Count aNew = (a - 2 * x - 1) / 2;
    EXPECT_TRUE(
        local::checkLabeling(g, familyProblem(delta, aNew, x + 1), converted)
            .ok());
  }
}

TEST(Lemma5Random, WorksOnIrregularTrees) {
  const unsigned seed = testsupport::effectiveSeed(9);
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = local::randomTree(100, 6, rng);
    // Greedy MIS as a 0-outdegree dominating set.
    std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
    for (local::NodeId v = 0; v < g.numNodes(); ++v) {
      bool blocked = false;
      for (const auto& he : g.neighbors(v)) {
        if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
      }
      if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
    }
    local::EdgeOrientation orientation(
        static_cast<std::size_t>(g.numEdges()), 0);
    const auto labeling =
        lemma5Labeling(g, inSet, orientation, g.maxDegree(), 0);
    EXPECT_TRUE(
        local::checkLabeling(g, familyProblem(g.maxDegree(), g.maxDegree(), 0),
                             labeling)
            .ok());
  }
}

TEST(Lemma11Random, ChainedRelaxations) {
  // Relax in two hops and in one hop; both must validate.
  const unsigned seed = testsupport::effectiveSeed(4);
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  const auto g = local::randomTree(80, 5, rng);
  const re::Count delta = 5;
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  local::EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()),
                                     0);
  const auto base = lemma5Labeling(g, inSet, orientation, delta, 0);
  const auto hop1 = lemma11Relax(g, base, delta, delta, 0, 4, 1);
  ASSERT_TRUE(local::checkLabeling(g, familyProblem(delta, 4, 1), hop1).ok());
  const auto hop2 = lemma11Relax(g, hop1, delta, 4, 1, 2, 2);
  EXPECT_TRUE(local::checkLabeling(g, familyProblem(delta, 2, 2), hop2).ok());
  const auto direct = lemma11Relax(g, base, delta, delta, 0, 2, 2);
  EXPECT_TRUE(
      local::checkLabeling(g, familyProblem(delta, 2, 2), direct).ok());
}

}  // namespace
}  // namespace relb::core
