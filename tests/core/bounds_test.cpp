#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relb::core {
namespace {

TEST(Bounds, LiftTakesMinimum) {
  // t small: chain limited.
  EXPECT_DOUBLE_EQ(liftDeterministic(10.0, /*log2n=*/20.0, /*delta=*/4.0),
                   10.0);
  // log_Delta n small: n limited (log2n=20, delta=2^10 -> 2 rounds).
  EXPECT_DOUBLE_EQ(liftDeterministic(100.0, 20.0, 1024.0), 2.0);
  // Randomized: log2(log2 n)/log2(delta) with log2n = 2^16.
  EXPECT_DOUBLE_EQ(liftRandomized(100.0, std::exp2(16.0), 16.0), 4.0);
}

TEST(Bounds, Theorem1DeterministicShape) {
  // For fixed n, the bound grows with Delta up to the crossover and then
  // decays as log_Delta n.
  const double log2n = 64.0;
  EXPECT_LT(theorem1Deterministic(log2n, 4), theorem1Deterministic(log2n, 256));
  EXPECT_GT(theorem1Deterministic(log2n, 256),
            theorem1Deterministic(log2n, 1e9));
}

TEST(Bounds, CrossoverAtBestDelta) {
  const double log2n = 100.0;
  const double bestLog = bestLog2DeltaDeterministic(log2n);
  EXPECT_NEAR(bestLog, 10.0, 1e-9);  // sqrt(100)
  // At the best Delta both branches of the min coincide: value sqrt(log n).
  const double best = std::exp2(bestLog);
  EXPECT_NEAR(theorem1Deterministic(log2n, best), 10.0, 1e-6);
  // Corollary 2's formula agrees there.
  EXPECT_NEAR(corollary2Deterministic(log2n, best), 10.0, 1e-6);
}

TEST(Bounds, RandomizedIsExponentiallySmaller) {
  const double log2n = std::exp2(16.0);  // n = 2^(2^16)
  const double detLog = bestLog2DeltaDeterministic(log2n);
  const double randLog = bestLog2DeltaRandomized(log2n);
  EXPECT_GT(detLog, randLog);
  EXPECT_NEAR(randLog, 4.0, 1e-6);  // sqrt(log2 log2 n) = sqrt(16)
  EXPECT_NEAR(theorem1Randomized(log2n, std::exp2(randLog)), 4.0, 1e-6);
}

TEST(Bounds, DegenerateInputsSafe) {
  EXPECT_DOUBLE_EQ(theorem1Deterministic(3.3, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(theorem1Randomized(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(corollary2Deterministic(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(corollary2Randomized(-5.0, 2.0), 0.0);
}

TEST(Bounds, MaxAdmissibleK) {
  EXPECT_EQ(maxAdmissibleK(1 << 20, 0.25), 32);   // (2^20)^(1/4) = 2^5
  EXPECT_EQ(maxAdmissibleK(1 << 20, 0.5), 1024);  // 2^10
  EXPECT_EQ(maxAdmissibleK(1, 0.5), 0);
  EXPECT_EQ(maxAdmissibleK(1 << 20, 0.0), 0);
}

TEST(Bounds, Corollary2Randomized) {
  const double log2n = std::exp2(25.0);  // n = 2^(2^25)
  EXPECT_NEAR(corollary2Randomized(log2n, 1e9), 5.0, 1e-6);
  EXPECT_NEAR(corollary2Randomized(log2n, 4.0), 2.0, 1e-6);
}

TEST(Bounds, LiftMonotoneInChainLength) {
  for (double t = 1.0; t < 32.0; t *= 2) {
    EXPECT_LE(liftDeterministic(t, 1e6, 64.0),
              liftDeterministic(2 * t, 1e6, 64.0));
  }
}

}  // namespace
}  // namespace relb::core
