// Machine checks of Lemma 8: exact (full Rbar(R(Pi)) computation) for small
// Delta, proof-script (symbolic) for arbitrary Delta, and cross-validation
// between the two.
#include "core/lemma8.hpp"

#include <gtest/gtest.h>

#include "re/relax.hpp"
#include "re/rename.hpp"
#include "re/zero_round.hpp"

namespace relb::core {
namespace {

using re::Count;

struct Params {
  Count delta;
  Count a;
  Count x;
};

class Lemma8ExactSweep : public ::testing::TestWithParam<Params> {};

TEST_P(Lemma8ExactSweep, ExactAndSymbolicAgree) {
  const auto [delta, a, x] = GetParam();
  const auto exact = verifyLemma8Exact(delta, a, x);
  EXPECT_TRUE(exact.ok) << exact.detail;
  const auto symbolic = verifyLemma8Symbolic(delta, a, x);
  EXPECT_TRUE(symbolic.ok) << symbolic.detail;
}

INSTANTIATE_TEST_SUITE_P(
    SmallDeltas, Lemma8ExactSweep,
    ::testing::Values(Params{2, 2, 0}, Params{3, 2, 0}, Params{3, 3, 0},
                      Params{3, 3, 1}, Params{4, 2, 0}, Params{4, 3, 1},
                      Params{4, 4, 0}, Params{4, 4, 2}, Params{5, 3, 0},
                      Params{5, 4, 1}, Params{5, 5, 3}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "d" + std::to_string(info.param.delta) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x);
    });

class Lemma8SymbolicSweep : public ::testing::TestWithParam<Params> {};

TEST_P(Lemma8SymbolicSweep, Verifies) {
  const auto [delta, a, x] = GetParam();
  const auto result = verifyLemma8Symbolic(delta, a, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    LargeDeltas, Lemma8SymbolicSweep,
    ::testing::Values(Params{64, 32, 3}, Params{1 << 10, 1 << 7, 11},
                      Params{1 << 16, 1 << 12, 63},
                      Params{Count{1} << 30, Count{1} << 25, 999},
                      Params{Count{1} << 40, Count{1} << 20, 12345}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "d" + std::to_string(info.param.delta) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x);
    });

TEST(Lemma8, RejectsParametersOutsideLemma) {
  EXPECT_FALSE(verifyLemma8Symbolic(4, 1, 0).ok);
  EXPECT_FALSE(verifyLemma8Symbolic(4, 3, 2).ok);
}

TEST(Lemma8, RelProblemIsFamilyPlusUpToRenaming) {
  // The renamed Pi_rel and Pi+ are literally the same problem here (the fix
  // point of the check), via the identity renaming.
  for (const auto& [delta, a, x] :
       std::vector<std::array<Count, 3>>{{4, 3, 1}, {6, 5, 2}, {9, 7, 1}}) {
    const auto rel = relProblemRenamed(delta, a, x);
    const auto plus = familyPlusProblem(delta, a, x);
    EXPECT_TRUE(re::equivalentUpToRenaming(rel, plus))
        << "delta=" << delta << " a=" << a << " x=" << x;
  }
}

TEST(Lemma8, PlusIsNotZeroRoundSolvable) {
  // The chain argument needs the intermediate problems to stay hard.
  EXPECT_FALSE(
      re::zeroRoundSolvableSymmetricPorts(familyPlusProblem(5, 4, 1)));
}

TEST(Lemma8, PlusRelabelsToNextFamilyProblemDirectlyFails) {
  // Ablation (Section 1.2): without the edge-coloring trick there is no
  // per-label relabeling from Pi+(a,x) into Pi(a', x+1) -- the label C has
  // no valid image (C cannot become A everywhere: AA edges may appear; nor
  // X everywhere: the node configuration C^{Delta-x} X^x would become
  // X^Delta which is not allowed).  This is exactly why the paper needs the
  // Delta-edge coloring.
  const Count delta = 6, a = 5, x = 1;
  const auto plus = familyPlusProblem(delta, a, x);
  // No per-label relabeling reaches *any* non-trivial family member at
  // x+1, whatever the target ownership parameter a'' and whatever each of
  // the six labels maps to.
  for (Count aTarget = 1; aTarget <= delta; ++aTarget) {
    const auto next = familyProblem(delta, aTarget, x + 1);
    std::vector<re::Label> map(6, 0);
    bool anyWorks = false;
    // All 5^6 label maps.
    for (int code = 0; code < 5 * 5 * 5 * 5 * 5 * 5 && !anyWorks; ++code) {
      int c = code;
      for (int i = 0; i < 6; ++i) {
        map[static_cast<std::size_t>(i)] = static_cast<re::Label>(c % 5);
        c /= 5;
      }
      if (re::isZeroRoundRelabeling(plus, next, map)) anyWorks = true;
    }
    EXPECT_FALSE(anyWorks) << "aTarget=" << aTarget;
  }
}

TEST(Lemma8, RelSetsAreRightClosedInFigure5) {
  // Each of the six Pi_rel sets must be right-closed w.r.t. the node
  // diagram of R(Pi), otherwise the relaxation targets would be unusable.
  const auto rProblem = claimedRFamily(6, 5, 1);
  const auto rel = re::computeStrengthScalable(rProblem.node, 8);
  for (const auto& s : relSets()) {
    EXPECT_TRUE(rel.isRightClosed(s));
  }
}

TEST(Lemma8, ForbiddenFactsAreTight) {
  // f2 says A^{x+1} U^{Delta-a+1} B^{a-x-2} is not a word of N_{R(Pi)};
  // check the neighboring word with one fewer U *is* present, i.e. the
  // forbidden fact is tight and the checker is not rejecting everything.
  const Count delta = 8, a = 6, x = 1;
  const auto rProblem = claimedRFamily(delta, a, x);
  re::Word w(8, 0);
  w[kRA] = x + 1;
  w[kRU] = delta - a;     // one fewer than the forbidden count
  w[kRB] = a - x - 1;     // filler adjusted
  EXPECT_TRUE(rProblem.node.containsWord(w));
  w[kRU] += 1;
  w[kRB] -= 1;
  EXPECT_FALSE(rProblem.node.containsWord(w));
}

}  // namespace
}  // namespace relb::core
