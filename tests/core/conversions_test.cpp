// End-to-end tests of the paper's explicit conversions (Lemmas 5, 9, 11) on
// concrete trees, verified with the generic LCL checker.
#include "core/conversions.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/sequence.hpp"

namespace relb::core {
namespace {

using local::Graph;
using local::HalfEdgeLabeling;
using re::Count;

// A greedy k-outdegree dominating set for testing Lemma 5: greedy MIS is a
// 0-outdegree dominating set, which is also valid for every k >= 0.
std::pair<std::vector<bool>, local::EdgeOrientation> greedyMisAsDs(
    const Graph& g) {
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  return {inSet, local::EdgeOrientation(static_cast<std::size_t>(g.numEdges()), 0)};
}

TEST(Lemma5, ProducesValidFamilySolutionOnRegularTree) {
  for (int delta : {3, 4, 5}) {
    const Graph g = local::completeRegularTree(delta, 3);
    const auto [inSet, orientation] = greedyMisAsDs(g);
    for (Count k : {0, 1, 2}) {
      const auto labeling =
          lemma5Labeling(g, inSet, orientation, delta, k);
      const auto pi = familyProblem(delta, delta, k);
      const auto check = local::checkLabeling(g, pi, labeling);
      EXPECT_TRUE(check.ok())
          << "delta=" << delta << " k=" << k << ": "
          << (check.messages.empty() ? "" : check.messages.front());
    }
  }
}

TEST(Lemma5, RejectsInvalidDominatingSet) {
  const Graph g = local::completeRegularTree(3, 2);
  std::vector<bool> empty(static_cast<std::size_t>(g.numNodes()), false);
  local::EdgeOrientation orientation(
      static_cast<std::size_t>(g.numEdges()), 0);
  EXPECT_THROW(lemma5Labeling(g, empty, orientation, 3, 0), re::Error);
}

TEST(Lemma5, WorksWithNonzeroOutdegrees) {
  // Take ALL nodes into the set and orient edges by BFS layer (towards the
  // root): outdegree <= 1, a valid 1-outdegree dominating set.
  const Graph g = local::completeRegularTree(3, 3);
  std::vector<bool> all(static_cast<std::size_t>(g.numNodes()), true);
  local::EdgeOrientation orientation(
      static_cast<std::size_t>(g.numEdges()), 0);
  for (local::EdgeId e = 0; e < g.numEdges(); ++e) {
    // completeRegularTree adds edges parent -> child; orient child-to-parent.
    orientation[static_cast<std::size_t>(e)] = -1;
  }
  ASSERT_TRUE(local::isKOutdegreeDominatingSet(g, all, orientation, 1));
  const auto labeling = lemma5Labeling(g, all, orientation, 3, 1);
  const auto check =
      local::checkLabeling(g, familyProblem(3, 3, 1), labeling);
  EXPECT_TRUE(check.ok())
      << (check.messages.empty() ? "" : check.messages.front());
}

struct ConvParams {
  int delta;
  Count a;
  Count x;
};

class Lemma9Sweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(Lemma9Sweep, AlternatingSyntheticSolutionConverts) {
  const auto [delta, a, x] = GetParam();
  const Graph g = local::completeRegularTree(delta, 4);
  ASSERT_TRUE(g.edgeColoringIsProper(delta));
  const auto plus = syntheticPlusLabelingAlternating(g, delta, a, x);
  // Input must solve Pi+.
  const auto plusCheck =
      local::checkLabeling(g, familyPlusProblem(delta, a, x), plus);
  ASSERT_TRUE(plusCheck.ok())
      << (plusCheck.messages.empty() ? "" : plusCheck.messages.front());
  // The conversion must solve Pi(floor((a-2x-1)/2), x+1).
  const auto converted = lemma9Convert(g, plus, delta, a, x);
  const Count aNew = (a - 2 * x - 1) / 2;
  const auto check =
      local::checkLabeling(g, familyProblem(delta, aNew, x + 1), converted);
  EXPECT_TRUE(check.ok())
      << (check.messages.empty() ? "" : check.messages.front());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma9Sweep,
    ::testing::Values(ConvParams{4, 3, 1}, ConvParams{4, 4, 1},
                      ConvParams{5, 5, 1}, ConvParams{5, 5, 2},
                      ConvParams{6, 5, 1}, ConvParams{6, 6, 2},
                      ConvParams{7, 7, 2}, ConvParams{8, 7, 3},
                      ConvParams{8, 8, 1}, ConvParams{10, 9, 2}),
    [](const ::testing::TestParamInfo<ConvParams>& info) {
      return "d" + std::to_string(info.param.delta) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x);
    });

TEST(Lemma9, FullPipelineFromDominatingSet) {
  // k-outdegree DS --Lemma5--> Pi(delta, a, x) --embed--> Pi+(a, x)
  // --Lemma9--> Pi(a', x+1): the complete one-step speedup realized on a
  // concrete tree.
  const int delta = 6;
  const Count a = 6, x = 0;
  const Graph g = local::completeRegularTree(delta, 3);
  const auto [inSet, orientation] = greedyMisAsDs(g);
  const auto base = lemma5Labeling(g, inSet, orientation, delta, x);
  ASSERT_TRUE(local::checkLabeling(g, familyProblem(delta, a, x), base).ok());
  const auto plus = plusFromFamilyLabeling(g, base, delta, a, x);
  ASSERT_TRUE(
      local::checkLabeling(g, familyPlusProblem(delta, a, x), plus).ok());
  const auto converted = lemma9Convert(g, plus, delta, a, x);
  const Count aNew = (a - 2 * x - 1) / 2;
  const auto check =
      local::checkLabeling(g, familyProblem(delta, aNew, x + 1), converted);
  EXPECT_TRUE(check.ok())
      << (check.messages.empty() ? "" : check.messages.front());
}

TEST(Lemma9, RequiresEdgeColoring) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const HalfEdgeLabeling dummy(g);
  EXPECT_THROW(lemma9Convert(g, dummy, 2, 3, 1), re::Error);
}

TEST(Lemma9, RequiresParameterRange) {
  const Graph g = local::completeRegularTree(3, 2);
  const HalfEdgeLabeling dummy(g);
  EXPECT_THROW(lemma9Convert(g, dummy, 3, 2, 1), re::Error);  // 2x+1 > a
}

TEST(Lemma11, RelaxationStaysValid) {
  const int delta = 5;
  const Graph g = local::completeRegularTree(delta, 3);
  const auto [inSet, orientation] = greedyMisAsDs(g);
  const auto base = lemma5Labeling(g, inSet, orientation, delta, 0);
  ASSERT_TRUE(
      local::checkLabeling(g, familyProblem(delta, delta, 0), base).ok());
  for (Count aTo : {5, 3, 1}) {
    for (Count xTo : {0, 1, 2}) {
      const auto relaxed =
          lemma11Relax(g, base, delta, delta, 0, aTo, xTo);
      const auto check =
          local::checkLabeling(g, familyProblem(delta, aTo, xTo), relaxed);
      EXPECT_TRUE(check.ok()) << "aTo=" << aTo << " xTo=" << xTo;
    }
  }
}

TEST(Lemma11, RejectsWrongDirection) {
  const Graph g = local::completeRegularTree(3, 2);
  const HalfEdgeLabeling dummy(g);
  EXPECT_THROW(lemma11Relax(g, dummy, 3, 2, 1, 3, 1), re::Error);  // aTo > aFrom
  EXPECT_THROW(lemma11Relax(g, dummy, 3, 2, 1, 2, 0), re::Error);  // xTo < xFrom
}

TEST(Conversions, FailureInjectionCheckerCatchesCorruption) {
  // Corrupt a valid labeling and confirm the checker rejects it -- the
  // verification in the other tests is not vacuous.
  const int delta = 4;
  const Graph g = local::completeRegularTree(delta, 3);
  const auto [inSet, orientation] = greedyMisAsDs(g);
  auto labeling = lemma5Labeling(g, inSet, orientation, delta, 0);
  const auto pi = familyProblem(delta, delta, 0);
  ASSERT_TRUE(local::checkLabeling(g, pi, labeling).ok());
  // Make both endpoints of edge 0 claim M: MM is forbidden.
  const auto [u, v] = g.endpoints(0);
  labeling.set(u, g.portOf(u, 0), kM);
  labeling.set(v, g.portOf(v, 0), kM);
  const auto check = local::checkLabeling(g, pi, labeling);
  EXPECT_FALSE(check.ok());
  EXPECT_GT(check.edgeViolations, 0);
}

}  // namespace
}  // namespace relb::core
