// Lemma 13: lower-bound chains, their certification, and the Omega(log
// Delta) growth of their length.
#include "core/sequence.hpp"

#include <gtest/gtest.h>

namespace relb::core {
namespace {

using re::Count;

TEST(Chain, PaperScheduleMatchesLemma13) {
  const Chain chain = paperChain(1 << 12, 1);
  ASSERT_GE(chain.steps.size(), 2u);
  EXPECT_EQ(chain.steps[0].a, 1 << 12);
  EXPECT_EQ(chain.steps[0].x, 1);
  EXPECT_EQ(chain.steps[1].a, 1 << 9);  // Delta / 2^3
  EXPECT_EQ(chain.steps[1].x, 2);
  EXPECT_EQ(certifyChain(chain), "");
}

TEST(Chain, ExactChainCertifies) {
  for (Count delta : {Count{8}, Count{64}, Count{1} << 10, Count{1} << 16,
                      Count{1} << 20}) {
    for (Count x0 : {0, 1, 5}) {
      const Chain chain = exactChain(delta, x0);
      EXPECT_EQ(certifyChain(chain), "")
          << "delta=" << delta << " x0=" << x0;
    }
  }
}

TEST(Chain, ExactChainIsAtLeastAsLongAsPaperChain) {
  for (Count delta : {64, 1 << 10, 1 << 16}) {
    EXPECT_GE(exactChain(delta, 0).length(), paperChain(delta, 0).length())
        << "delta=" << delta;
  }
}

TEST(Chain, LengthGrowsLogarithmically) {
  // The chain length must grow by Theta(1) per doubling of Delta (the
  // Omega(log Delta) lower bound shape).
  Count prev = exactChain(1 << 6, 0).length();
  for (int e = 7; e <= 24; ++e) {
    const Count len = exactChain(Count{1} << e, 0).length();
    EXPECT_GE(len, prev);
    EXPECT_LE(len - prev, 2);
    prev = len;
  }
  // Concretely: length ~ (3/4) log2(Delta) for the exact recurrence.
  const Count at20 = exactChain(Count{1} << 20, 0).length();
  EXPECT_GE(at20, 12);
  EXPECT_LE(at20, 20);
}

TEST(Chain, LargerStartingXShortensChain) {
  const Count delta = 1 << 16;
  const Count withSmallK = exactChain(delta, 0).length();
  const Count withLargeK = exactChain(delta, 100).length();
  EXPECT_GT(withSmallK, withLargeK);
  EXPECT_GT(withLargeK, 0);
}

TEST(Chain, CertifierCatchesBadChains) {
  // A chain that jumps to parameters not reachable by Corollary 10 + Lemma
  // 11 must be rejected.
  Chain bogus;
  bogus.delta = 64;
  bogus.steps = {{64, 0}, {60, 1}};  // speedup gives a' = 31, not 60
  EXPECT_NE(certifyChain(bogus), "");

  // A chain whose final problem is 0-round solvable proves nothing.
  Chain trivialEnd;
  trivialEnd.delta = 64;
  trivialEnd.steps = {{64, 64}};  // x = delta -> X^delta allowed
  EXPECT_NE(certifyChain(trivialEnd), "");

  // Violated preconditions (2x+1 > a).
  Chain badPre;
  badPre.delta = 64;
  badPre.steps = {{5, 3}, {1, 4}};
  EXPECT_NE(certifyChain(badPre), "");
}

TEST(Chain, ZeroRoundBoundaryExactlyLemma12) {
  // familyZeroRoundSolvable must match Lemma 12's characterization on the
  // full small parameter grid.
  for (Count delta = 2; delta <= 6; ++delta) {
    for (Count a = 0; a <= delta; ++a) {
      for (Count x = 0; x <= delta; ++x) {
        const bool expected = (a == 0) || (x == delta);
        EXPECT_EQ(familyZeroRoundSolvable(delta, a, x), expected)
            << "delta=" << delta << " a=" << a << " x=" << x;
      }
    }
  }
}

TEST(Chain, PnLowerBoundMonotoneInDelta) {
  Count prev = 0;
  for (int e = 4; e <= 20; e += 2) {
    const Count bound = pnLowerBoundRounds(Count{1} << e, 1);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
  EXPECT_GT(prev, 8);
}

TEST(Chain, PnLowerBoundDecreasesInK) {
  const Count delta = 1 << 14;
  Count prev = pnLowerBoundRounds(delta, 0);
  for (Count k : {1, 4, 16, 64, 256}) {
    const Count bound = pnLowerBoundRounds(delta, k);
    EXPECT_LE(bound, prev);
    prev = bound;
  }
}

}  // namespace
}  // namespace relb::core
