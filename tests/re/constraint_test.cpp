#include "re/constraint.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

Configuration cfg(std::vector<Group> groups) {
  return Configuration(std::move(groups));
}

TEST(Constraint, DegreeEnforced) {
  Constraint c(3, {});
  EXPECT_THROW(c.add(cfg({{LabelSet{0}, 2}})), Error);
  c.add(cfg({{LabelSet{0}, 3}}));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Constraint, DuplicatesDropped) {
  Constraint c(2, {});
  c.add(cfg({{LabelSet{0}, 2}}));
  c.add(cfg({{LabelSet{0}, 2}}));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Constraint, ContainsWordUnionSemantics) {
  Constraint c(2, {cfg({{LabelSet{0}, 2}}),                       // AA
                   cfg({{LabelSet{1}, 1}, {LabelSet{2}, 1}})});   // BC
  EXPECT_TRUE(c.containsWord(wordFromLabels({0, 0}, 3)));
  EXPECT_TRUE(c.containsWord(wordFromLabels({1, 2}, 3)));
  EXPECT_FALSE(c.containsWord(wordFromLabels({0, 1}, 3)));
  EXPECT_FALSE(c.containsWord(wordFromLabels({1, 1}, 3)));
}

TEST(Constraint, IntersectsConfiguration) {
  Constraint c(2, {cfg({{LabelSet{0}, 2}})});
  EXPECT_TRUE(c.intersectsConfiguration(cfg({{LabelSet{0, 1}, 2}})));
  EXPECT_FALSE(c.intersectsConfiguration(cfg({{LabelSet{1}, 2}})));
}

TEST(Constraint, ContainsAllWordsOfUnionNeeded) {
  // L([AB][AB]) = {AA, AB, BB} is covered by the union of AA | [AB]B,
  // but by no single configuration.
  Constraint c(2, {cfg({{LabelSet{0}, 2}}),
                   cfg({{LabelSet{0, 1}, 1}, {LabelSet{1}, 1}})});
  EXPECT_TRUE(c.containsAllWordsOf(cfg({{LabelSet{0, 1}, 2}}), 2));
  // Missing BB -> not contained.
  Constraint c2(2, {cfg({{LabelSet{0}, 2}}),
                    cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}})});
  EXPECT_FALSE(c2.containsAllWordsOf(cfg({{LabelSet{0, 1}, 2}}), 2));
}

TEST(Constraint, ContainsAllWordsOfCheapPathHugeExponents) {
  const Count huge = Count{1} << 40;
  Constraint c(2 * huge, {cfg({{LabelSet{0, 1}, 2 * huge}})});
  // Groupwise embedding certifies inclusion without enumeration.
  EXPECT_TRUE(
      c.containsAllWordsOf(cfg({{LabelSet{0}, huge}, {LabelSet{1}, huge}}), 2));
}

TEST(Constraint, EnumerateWordsDeduplicatesAcrossConfigs) {
  Constraint c(2, {cfg({{LabelSet{0, 1}, 2}}), cfg({{LabelSet{0}, 2}})});
  const auto words = c.enumerateWords(2);
  EXPECT_EQ(words.size(), 3u);  // AA, AB, BB
}

TEST(Constraint, RemoveDominatedConfigurations) {
  Constraint c(2, {cfg({{LabelSet{0}, 2}}),          // AA (dominated)
                   cfg({{LabelSet{0, 1}, 2}}),       // [AB]^2
                   cfg({{LabelSet{2}, 2}})});        // CC (kept)
  c.removeDominatedConfigurations();
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.containsWord(wordFromLabels({0, 0}, 3)));
  EXPECT_TRUE(c.containsWord(wordFromLabels({2, 2}, 3)));
}

TEST(Constraint, RemoveDominatedKeepsOneOfEqualPair) {
  Constraint c(2, {cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}}),
                   cfg({{LabelSet{1}, 1}, {LabelSet{0}, 1}})});
  // Identical after normalization -> already deduped by add().
  EXPECT_EQ(c.size(), 1u);
}

TEST(Constraint, SameLanguage) {
  Constraint a(2, {cfg({{LabelSet{0, 1}, 2}})});
  Constraint b(2, {cfg({{LabelSet{0}, 2}}), cfg({{LabelSet{1}, 2}}),
                   cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}})});
  EXPECT_TRUE(sameLanguage(a, b, 2));
  Constraint c(2, {cfg({{LabelSet{0}, 2}}), cfg({{LabelSet{1}, 2}})});
  EXPECT_FALSE(sameLanguage(a, c, 2));
}

TEST(Constraint, RenderListsConfigs) {
  Alphabet alpha({"M", "O"});
  Constraint c(2, {cfg({{LabelSet{0}, 2}}), cfg({{LabelSet{1}, 2}})});
  EXPECT_EQ(c.render(alpha), "M^2\nO^2");
}

}  // namespace
}  // namespace relb::re
