#include "re/problem.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

TEST(ProblemParse, MisRoundTrip) {
  const auto p = Problem::parse("M^3\nP O^2\n", "M [PO]\nO O\n");
  EXPECT_EQ(p.alphabet.size(), 3);
  EXPECT_EQ(p.delta(), 3);
  EXPECT_EQ(p.node.size(), 2u);
  EXPECT_EQ(p.edge.size(), 2u);
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({m, m, m}, 3)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({pp, o, o}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({pp, pp, o}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({m, o}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({m, pp}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({o, o}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({m, m}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({pp, pp}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({pp, o}, 3)));
}

TEST(ProblemParse, BracketWithSpacesAndExponents) {
  const auto p = Problem::parse("[Ma Pb]^4\n", "[Ma Pb] [Ma Pb]\n");
  EXPECT_EQ(p.alphabet.size(), 2);
  EXPECT_EQ(p.delta(), 4);
}

TEST(ProblemParse, CommentsAndBlankLinesSkipped) {
  const auto p = Problem::parse("# node\nM^2\n\n", "# edge\nM M\n");
  EXPECT_EQ(p.node.size(), 1u);
}

TEST(ProblemParse, Errors) {
  EXPECT_THROW(Problem::parse("", "M M\n"), Error);
  EXPECT_THROW(Problem::parse("M^2\n", ""), Error);
  EXPECT_THROW(Problem::parse("M^2\n", "M M M\n"), Error);  // edge degree != 2
  EXPECT_THROW(Problem::parse("[M\n", "M M\n"), Error);
  EXPECT_THROW(Problem::parse("M^x\n", "M M\n"), Error);
}

TEST(ProblemParse, RenderParsesBack) {
  const auto p = misProblem(5);
  const auto q = Problem::parse(p.node.render(p.alphabet),
                                p.edge.render(p.alphabet));
  EXPECT_EQ(q.delta(), 5);
  EXPECT_EQ(q.node.size(), p.node.size());
  EXPECT_EQ(q.edge.size(), p.edge.size());
}

TEST(MisProblem, MatchesSectionTwoTwo) {
  const auto p = misProblem(4);
  EXPECT_EQ(p.delta(), 4);
  EXPECT_EQ(p.node.size(), 2u);
  EXPECT_EQ(p.edge.size(), 2u);
  EXPECT_THROW(misProblem(1), Error);
}

TEST(MisProblem, HugeDelta) {
  const Count delta = Count{1} << 30;
  const auto p = misProblem(delta);
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  Word w(3, 0);
  w[m] = delta;
  EXPECT_TRUE(p.node.containsWord(w));
  Word w2(3, 0);
  w2[pp] = 1;
  w2[o] = delta - 1;
  EXPECT_TRUE(p.node.containsWord(w2));
  w2[pp] = 2;
  w2[o] = delta - 2;
  EXPECT_FALSE(p.node.containsWord(w2));
}

TEST(SinklessOrientation, Encoding) {
  const auto p = sinklessOrientationProblem(3);
  const auto i = p.alphabet.at("I");
  const auto o = p.alphabet.at("O");
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({o, o, o}, 2)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({o, i, i}, 2)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({i, i, i}, 2)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({i, o}, 2)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({o, o}, 2)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({i, i}, 2)));
}

TEST(Problem, ValidateCatchesBadEdgeDegree) {
  Problem p;
  p.alphabet.add("A");
  p.node = Constraint(3, {Configuration({{LabelSet{0}, 3}})});
  p.edge = Constraint(3, {Configuration({{LabelSet{0}, 3}})});
  EXPECT_THROW(p.validate(), Error);
}

}  // namespace
}  // namespace relb::re
