// The pass-based engine core (engine.hpp): cache hits are bit-identical to
// cold runs, per-pass statistics are consistent across the pipeline, warm
// contexts perform zero recomputation for certifyChain / the speedup
// iteration, and canonical interning detects renamed duplicates.
#include <gtest/gtest.h>

#include <vector>

#include "core/family.hpp"
#include "core/sequence.hpp"
#include "re/autobound.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"
#include "re/rename.hpp"
#include "re/zero_round.hpp"
#include "util/thread_pool.hpp"

namespace relb::re {
namespace {

void expectProblemsBitIdentical(const Problem& a, const Problem& b,
                                const std::string& what) {
  EXPECT_EQ(a.alphabet.names(), b.alphabet.names()) << what;
  EXPECT_EQ(a.node, b.node) << what;
  EXPECT_EQ(a.edge, b.edge) << what;
}

std::vector<std::pair<std::string, Problem>> speedupTestbed() {
  std::vector<std::pair<std::string, Problem>> out;
  for (Count delta = 3; delta <= 6; ++delta) {
    out.emplace_back("family(" + std::to_string(delta) + ")",
                     core::familyProblem(delta, delta / 2, 1));
    out.emplace_back("sinkless(" + std::to_string(delta) + ")",
                     sinklessOrientationProblem(delta));
    if (delta <= 4) {
      // MIS speedups beyond Delta = 4 exceed the engine's enumeration
      // guards / a unit test's time budget; the bit-identity contract is
      // degree-independent, so the small degrees carry the coverage.
      out.emplace_back("mis(" + std::to_string(delta) + ")",
                       misProblem(delta));
    }
  }
  return out;
}

TEST(EngineContext, CacheHitIsBitIdenticalToColdRun) {
  for (const auto& [name, p] : speedupTestbed()) {
    const Problem cold = speedupStep(p);  // uncached free function
    EngineContext ctx;
    const Problem first = ctx.speedupStep(p);
    const CacheStats afterFirst = ctx.stats();
    EXPECT_EQ(afterFirst.stepHits, 0u) << name;
    EXPECT_EQ(afterFirst.stepMisses, 2u) << name;  // applyR + applyRbar
    const Problem second = ctx.speedupStep(p);
    const CacheStats afterSecond = ctx.stats();
    EXPECT_EQ(afterSecond.stepHits, 2u) << name;
    EXPECT_EQ(afterSecond.stepMisses, 2u) << name;  // nothing recomputed
    expectProblemsBitIdentical(cold, first, name + " cold vs ctx");
    expectProblemsBitIdentical(first, second, name + " miss vs hit");
  }
}

TEST(EngineContext, ApplyRApplyRbarMatchFreeFunctions) {
  for (const auto& [name, p] : speedupTestbed()) {
    EngineContext ctx;
    const StepResult coldR = applyR(p);
    const StepResult ctxR = ctx.applyR(p);
    expectProblemsBitIdentical(coldR.problem, ctxR.problem, name + " R");
    EXPECT_EQ(coldR.meaning, ctxR.meaning) << name;
    const StepResult coldRbar = applyRbar(coldR.problem);
    const StepResult ctxRbar = ctx.applyRbar(ctxR.problem);
    expectProblemsBitIdentical(coldRbar.problem, ctxRbar.problem,
                               name + " Rbar");
    EXPECT_EQ(coldRbar.meaning, ctxRbar.meaning) << name;
  }
}

TEST(PassPipeline, MatchesSpeedupStepAndStatsAreConsistent) {
  for (const auto& [name, p] : speedupTestbed()) {
    EngineContext ctx;
    const PassManager pipeline = PassManager::speedupPipeline();
    const PipelineResult result = pipeline.run(p, ctx);
    expectProblemsBitIdentical(speedupStep(p), result.problem, name);
    ASSERT_EQ(result.passes.size(), 2u) << name;
    // Boundary consistency: what leaves pass k enters pass k+1.
    for (std::size_t k = 0; k + 1 < result.passes.size(); ++k) {
      EXPECT_EQ(result.passes[k].labelsOut, result.passes[k + 1].labelsIn)
          << name << " pass " << k;
      EXPECT_EQ(result.passes[k].nodeConfigsOut,
                result.passes[k + 1].nodeConfigsIn)
          << name << " pass " << k;
      EXPECT_EQ(result.passes[k].edgeConfigsOut,
                result.passes[k + 1].edgeConfigsIn)
          << name << " pass " << k;
    }
    // The first pass sees the input problem; the last emits the result.
    EXPECT_EQ(result.passes.front().labelsIn, p.alphabet.size()) << name;
    EXPECT_EQ(result.passes.front().nodeConfigsIn, p.node.size()) << name;
    EXPECT_EQ(result.passes.back().labelsOut,
              result.problem.alphabet.size())
        << name;
    EXPECT_EQ(result.passes.back().nodeConfigsOut, result.problem.node.size())
        << name;
    EXPECT_FALSE(result.passes[0].fromCache) << name;
    // A second pipeline run over the warm context is served from the memo.
    const PipelineResult warm = pipeline.run(p, ctx);
    expectProblemsBitIdentical(result.problem, warm.problem, name + " warm");
    EXPECT_TRUE(warm.passes[0].fromCache) << name;
    EXPECT_TRUE(warm.passes[1].fromCache) << name;
  }
}

TEST(PassPipeline, ZeroRoundCheckStopsOnSolvableProblem) {
  // Every node may output A everywhere: trivially 0-round solvable.
  const Problem trivial = Problem::parse("A^3", "A A");
  EngineContext ctx;
  PassManager pm;
  pm.add(makeZeroRoundCheckPass(ZeroRoundMode::kAdversarialPorts));
  pm.add(makeApplyRPass());
  const PipelineResult result = pm.run(trivial, ctx);
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(result.stoppedAt, 0u);
  // The stop short-circuits: only the zero-round pass has a stats row.
  ASSERT_EQ(result.passes.size(), 1u);
  expectProblemsBitIdentical(trivial, result.problem, "stopped pipeline");
}

TEST(PassPipeline, RenameAndRelaxPreserveEquivalence) {
  const Problem mis = misProblem(3);
  EngineContext ctx;
  PassManager pm;
  pm.add(makeApplyRPass());
  pm.add(makeApplyRbarPass());
  pm.add(makeRelaxPass());
  pm.add(makeRenamePass());
  const PipelineResult result = pm.run(mis, ctx);
  const Problem plain = speedupStep(mis);
  // Relax + Rename keep the language: same zero-round verdicts and the
  // renamed problem is isomorphic to the plain speedup when small enough.
  EXPECT_EQ(zeroRoundSolvableAdversarialPorts(plain),
            zeroRoundSolvableAdversarialPorts(result.problem));
  if (plain.alphabet.size() <= 10 &&
      plain.alphabet.size() == result.problem.alphabet.size()) {
    EXPECT_TRUE(equivalentUpToRenaming(plain, result.problem));
  }
}

TEST(EngineContext, CertifyChainWarmRerunRecomputesNothing) {
  const core::Chain chain = core::exactChain(1 << 10, 1);
  ASSERT_GT(chain.steps.size(), 3u);
  EngineContext ctx;
  const std::string coldVerdict = core::certifyChain(chain, ctx);
  EXPECT_EQ(coldVerdict, core::certifyChain(chain));  // same as context-free
  const CacheStats cold = ctx.stats();
  EXPECT_EQ(cold.zeroRoundMisses, chain.steps.size());
  const std::string warmVerdict = core::certifyChain(chain, ctx);
  EXPECT_EQ(warmVerdict, coldVerdict);
  const CacheStats warm = ctx.stats();
  EXPECT_EQ(warm.zeroRoundMisses, cold.zeroRoundMisses)
      << "warm certifyChain recomputed a zero-round verdict";
  EXPECT_EQ(warm.zeroRoundHits, cold.zeroRoundHits + chain.steps.size());
}

TEST(EngineContext, IterateSpeedupWarmRerunRecomputesNothing) {
  const Problem mis = misProblem(3);
  IterateOptions options;
  options.maxSteps = 2;
  options.maxLabels = 32;
  const IterationTrace plain = iterateSpeedup(mis, options);

  EngineContext ctx;
  options.context = &ctx;
  const IterationTrace cold = iterateSpeedup(mis, options);
  const CacheStats afterCold = ctx.stats();
  EXPECT_GT(afterCold.stepMisses, 0u);
  const IterationTrace warm = iterateSpeedup(mis, options);
  const CacheStats afterWarm = ctx.stats();
  EXPECT_EQ(afterWarm.stepMisses, afterCold.stepMisses)
      << "warm iteration recomputed a speedup step";
  EXPECT_GT(afterWarm.stepHits, afterCold.stepHits);

  // Context and context-free traces are identical.
  for (const IterationTrace* t : {&cold, &warm}) {
    EXPECT_EQ(plain.reason, t->reason);
    ASSERT_EQ(plain.steps.size(), t->steps.size());
    for (std::size_t i = 0; i < plain.steps.size(); ++i) {
      EXPECT_EQ(plain.steps[i].labels, t->steps[i].labels);
    }
    expectProblemsBitIdentical(plain.last, t->last, "iterate trace");
  }
}

TEST(EngineContext, FixedPointDetectionAgreesWithAndWithoutContext) {
  for (Count delta = 3; delta <= 5; ++delta) {
    const Problem so = sinklessOrientationProblem(delta);
    IterateOptions options;
    options.maxSteps = 4;
    const IterationTrace plain = iterateSpeedup(so, options);
    EngineContext ctx;
    options.context = &ctx;
    const IterationTrace withCtx = iterateSpeedup(so, options);
    EXPECT_EQ(plain.reason, withCtx.reason) << delta;
    EXPECT_EQ(plain.fixedPointAt, withCtx.fixedPointAt) << delta;
    EXPECT_EQ(plain.zeroRoundAfter, withCtx.zeroRoundAfter) << delta;
    expectProblemsBitIdentical(plain.last, withCtx.last, "fixed point");
  }
}

TEST(EngineContext, AutoLowerBoundAgreesWithAndWithoutContext) {
  for (const Problem& p : {misProblem(3), sinklessOrientationProblem(3)}) {
    AutoLowerBoundOptions options;
    options.maxSteps = 3;
    const AutoLowerBound plain = autoLowerBound(p, options);
    EngineContext ctx;
    options.context = &ctx;
    const AutoLowerBound withCtx = autoLowerBound(p, options);
    EXPECT_EQ(plain.rounds, withCtx.rounds);
    EXPECT_EQ(plain.reason, withCtx.reason);
    EXPECT_EQ(plain.labelsPerStep, withCtx.labelsPerStep);
  }
}

TEST(EngineContext, InternDetectsRenamedDuplicates) {
  EngineContext ctx;
  const Problem mis = misProblem(3);
  const auto first = ctx.intern(mis);
  EXPECT_FALSE(first.alreadyInterned);
  const auto again = ctx.intern(mis);
  EXPECT_TRUE(again.alreadyInterned);
  EXPECT_EQ(first.hash, again.hash);

  // A renamed copy (relabeled + different names) interns to the same entry.
  Alphabet fresh;
  fresh.add("zz");
  fresh.add("yy");
  fresh.add("xx");
  const Problem renamed = renameProblem(mis, {2, 0, 1}, fresh);
  const auto permuted = ctx.intern(renamed);
  EXPECT_TRUE(permuted.alreadyInterned);
  EXPECT_EQ(permuted.hash, first.hash);
  EXPECT_EQ(permuted.canonical.problem, first.canonical.problem);
  EXPECT_EQ(ctx.stats().internedProblems, 1u);

  // A structurally different problem interns separately.
  const auto other = ctx.intern(sinklessOrientationProblem(3));
  EXPECT_FALSE(other.alreadyInterned);
  EXPECT_NE(other.hash, first.hash);
  EXPECT_EQ(ctx.stats().internedProblems, 2u);
}

TEST(EngineContext, SharedAcrossThreadsStaysConsistent) {
  // One context, eight lanes, every lane hammering the same three problems:
  // concurrent cold misses may duplicate work, but every returned problem
  // must equal the serial reference (this test is a ThreadSanitizer target).
  const std::vector<Problem> problems = {
      misProblem(3), sinklessOrientationProblem(3),
      core::familyProblem(4, 2, 1)};
  std::vector<Problem> reference;
  for (const Problem& p : problems) reference.push_back(speedupStep(p));

  EngineContext ctx;
  constexpr std::size_t kTasks = 24;
  std::vector<Problem> results(kTasks);
  util::parallel_for(8, kTasks, [&](std::size_t i) {
    results[i] = ctx.speedupStep(problems[i % problems.size()]);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    expectProblemsBitIdentical(reference[i % problems.size()], results[i],
                               "shared context task " + std::to_string(i));
  }
  const CacheStats stats = ctx.stats();
  EXPECT_EQ(stats.stepHits + stats.stepMisses, 2 * kTasks);
}

TEST(EngineContext, SharedSubResultsAreCached) {
  const Problem p = core::familyProblem(5, 2, 1);
  EngineContext ctx;
  const auto compat1 = ctx.edgeCompatibility(p.edge, p.alphabet.size());
  const auto compat2 = ctx.edgeCompatibility(p.edge, p.alphabet.size());
  EXPECT_EQ(compat1, compat2);
  EXPECT_EQ(ctx.stats().edgeCompatMisses, 1u);
  EXPECT_EQ(ctx.stats().edgeCompatHits, 1u);

  const auto rc1 = ctx.rightClosedSets(p.node, p.alphabet.size(),
                                       p.alphabet.all(), 5'000'000);
  const auto rc2 = ctx.rightClosedSets(p.node, p.alphabet.size(),
                                       p.alphabet.all(), 5'000'000);
  EXPECT_EQ(rc1, rc2);
  EXPECT_EQ(ctx.stats().rightClosedMisses, 1u);
  EXPECT_EQ(ctx.stats().rightClosedHits, 1u);
}

}  // namespace
}  // namespace relb::re
