// Randomized cross-validation of the R / Rbar operators against brute-force
// reference implementations of the Section 2.3 definitions.  This guards the
// optimized machinery (Galois-pair edge maximization, right-closed-set
// pruning, packed-word enumeration, matching-based maximality) on inputs
// with no special structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "re/re_step.hpp"

namespace relb::re {
namespace {

Problem randomProblem(std::mt19937& rng, int alphabetSize, Count delta,
                      int nodeConfigs, double edgeDensity) {
  Problem p;
  for (int i = 0; i < alphabetSize; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << alphabetSize) - 1);
  Constraint node(delta, {});
  for (int i = 0; i < nodeConfigs; ++i) {
    std::vector<Group> groups;
    Count remaining = delta;
    while (remaining > 0) {
      std::uniform_int_distribution<Count> countDist(1, remaining);
      const Count c = countDist(rng);
      groups.push_back(
          {LabelSet(static_cast<std::uint32_t>(setDist(rng))), c});
      remaining -= c;
    }
    node.add(Configuration(std::move(groups)));
  }
  p.node = std::move(node);

  std::bernoulli_distribution coin(edgeDensity);
  Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < alphabetSize; ++a) {
    for (int b = a; b < alphabetSize; ++b) {
      if (coin(rng)) {
        edge.add(Configuration({{LabelSet{static_cast<Label>(a)}, 1},
                                {LabelSet{static_cast<Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) {
    edge.add(Configuration({{LabelSet{0}, 2}}));
  }
  p.edge = std::move(edge);
  p.validate();
  return p;
}

// Brute-force reference for the edge side of R (from re_step_test.cpp,
// duplicated for independence).
std::vector<std::pair<LabelSet, LabelSet>> refMaximalEdgePairs(
    const Problem& p) {
  const int n = p.alphabet.size();
  std::vector<LabelSet> subsets;
  for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << n); ++mask) {
    subsets.push_back(LabelSet(mask));
  }
  std::vector<std::pair<LabelSet, LabelSet>> valid;
  for (const LabelSet a : subsets) {
    for (const LabelSet b : subsets) {
      if (b.bits() < a.bits()) continue;
      bool ok = true;
      forEachLabel(a, [&](Label la) {
        forEachLabel(b, [&](Label lb) {
          Word w(static_cast<std::size_t>(n), 0);
          ++w[la];
          ++w[lb];
          if (!p.edge.containsWord(w)) ok = false;
        });
      });
      if (ok) valid.emplace_back(a, b);
    }
  }
  std::vector<std::pair<LabelSet, LabelSet>> maximal;
  for (const auto& pr : valid) {
    bool dominated = false;
    for (const auto& q : valid) {
      if (q == pr) continue;
      const bool straight =
          pr.first.subsetOf(q.first) && pr.second.subsetOf(q.second);
      const bool swapped =
          pr.first.subsetOf(q.second) && pr.second.subsetOf(q.first);
      if (straight || swapped) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(pr);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

// Brute-force Rbar node side over ALL subsets (no right-closed pruning),
// canonicalized as sorted bitmask multisets.
std::set<std::vector<std::uint32_t>> refRbarNodeConfigs(const Problem& p) {
  const int n = p.alphabet.size();
  const Count delta = p.delta();
  std::vector<LabelSet> subsets;
  for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << n); ++mask) {
    subsets.push_back(LabelSet(mask));
  }
  std::vector<std::vector<LabelSet>> valid;
  std::vector<LabelSet> slots;
  std::function<void(std::size_t)> rec = [&](std::size_t minIdx) {
    if (static_cast<Count>(slots.size()) == delta) {
      std::set<Word> level;
      level.insert(Word(static_cast<std::size_t>(n), 0));
      for (const LabelSet s : slots) {
        std::set<Word> next;
        for (const Word& w : level) {
          forEachLabel(s, [&](Label l) {
            Word e = w;
            ++e[l];
            next.insert(std::move(e));
          });
        }
        level = std::move(next);
      }
      if (std::all_of(level.begin(), level.end(), [&](const Word& w) {
            return p.node.containsWord(w);
          })) {
        valid.push_back(slots);
      }
      return;
    }
    for (std::size_t i = minIdx; i < subsets.size(); ++i) {
      slots.push_back(subsets[i]);
      rec(i);
      slots.pop_back();
    }
  };
  rec(0);

  const auto dominatedBy = [&](const std::vector<LabelSet>& x,
                               const std::vector<LabelSet>& y) {
    std::vector<std::size_t> perm(x.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    do {
      bool ok = true;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (!x[i].subsetOf(y[perm[i]])) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
  };
  std::set<std::vector<std::uint32_t>> maximal;
  for (const auto& x : valid) {
    bool dominated = false;
    for (const auto& y : valid) {
      if (x == y) continue;
      if (dominatedBy(x, y) && !dominatedBy(y, x)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      std::vector<std::uint32_t> canon;
      for (const LabelSet s : x) canon.push_back(s.bits());
      std::sort(canon.begin(), canon.end());
      maximal.insert(std::move(canon));
    }
  }
  return maximal;
}

std::set<std::vector<std::uint32_t>> engineRbarNodeConfigs(
    const StepResult& step) {
  std::set<std::vector<std::uint32_t>> out;
  for (const auto& c : step.problem.node.configurations()) {
    std::vector<std::uint32_t> canon;
    for (const auto& g : c.groups()) {
      for (Count i = 0; i < g.count; ++i) {
        canon.push_back(step.meaning[g.set.min()].bits());
      }
    }
    std::sort(canon.begin(), canon.end());
    out.insert(std::move(canon));
  }
  return out;
}

class RandomStepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomStepTest, ApplyRMatchesReference) {
  std::mt19937 rng(GetParam());
  const auto p = randomProblem(rng, 3, 3, 2, 0.5);
  auto engine = maximalEdgePairs(p.edge, p.alphabet.size());
  std::sort(engine.begin(), engine.end());
  EXPECT_EQ(engine, refMaximalEdgePairs(p));
}

TEST_P(RandomStepTest, ApplyRbarMatchesReference) {
  std::mt19937 rng(GetParam() + 500);
  const auto p = randomProblem(rng, 3, 3, 2, 0.6);
  const auto r = applyR(p);
  if (r.problem.alphabet.size() > 5) {
    GTEST_SKIP() << "reference enumeration too large";
  }
  try {
    const auto rbar = applyRbar(r.problem);
    EXPECT_EQ(engineRbarNodeConfigs(rbar), refRbarNodeConfigs(r.problem));
  } catch (const Error&) {
    // The node constraint maximized to nothing (the problem is unsolvable);
    // the reference must agree.
    EXPECT_TRUE(refRbarNodeConfigs(r.problem).empty());
  }
}

TEST_P(RandomStepTest, MeaningsAreRightClosed) {
  // Observation 4 on random inputs: R meanings right-closed w.r.t. the edge
  // constraint, Rbar meanings w.r.t. the node constraint.
  std::mt19937 rng(GetParam() + 900);
  const auto p = randomProblem(rng, 3, 3, 2, 0.6);
  const auto r = applyR(p);
  const auto edgeRel = computeStrength(p.edge, p.alphabet.size());
  for (const LabelSet s : r.meaning) {
    EXPECT_TRUE(edgeRel.isRightClosed(s));
  }
  if (r.problem.alphabet.size() <= 5) {
    try {
      const auto rbar = applyRbar(r.problem);
      const auto nodeRel =
          computeStrength(r.problem.node, r.problem.alphabet.size());
      for (const LabelSet s : rbar.meaning) {
        EXPECT_TRUE(nodeRel.isRightClosed(s));
      }
    } catch (const Error&) {
      // Unsolvable after maximization; nothing to check.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStepTest,
                         ::testing::Range(1u, 21u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb::re
