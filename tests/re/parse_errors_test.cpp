// Negative parse tests: every diagnostic must name the section, the line,
// the 1-based column, and quote the offending token, so that a malformed
// problem file is fixable from the message alone.
#include <gtest/gtest.h>

#include <string>

#include "io/serialize.hpp"
#include "re/problem.hpp"

namespace relb::re {
namespace {

std::string parseError(std::string_view node, std::string_view edge) {
  try {
    (void)Problem::parse(node, edge);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse failure for node=" << node
                << " edge=" << edge;
  return {};
}

void expectContains(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message: " << message << "\nexpected to contain: " << needle;
}

TEST(ParseErrors, BadExponentNamesLineColumnAndToken) {
  const std::string msg = parseError("M M\nP O^x\n", "M M\n");
  expectContains(msg, "node constraint line 2");
  expectContains(msg, "column 3");
  expectContains(msg, "bad exponent 'x' in 'O^x'");
}

TEST(ParseErrors, EmptyExponent) {
  const std::string msg = parseError("M^ M\n", "M M\n");
  expectContains(msg, "node constraint line 1");
  expectContains(msg, "column 1");
  expectContains(msg, "empty exponent in 'M^'");
}

TEST(ParseErrors, ExponentOverflow) {
  const std::string msg =
      parseError("M^99999999999999999999 M\n", "M M\n");
  expectContains(msg, "exponent too large in 'M^99999999999999999999'");
}

TEST(ParseErrors, UnterminatedDisjunctionInEdgeSection) {
  const std::string msg = parseError("M M\n", "M [PO\n");
  expectContains(msg, "edge constraint line 1");
  expectContains(msg, "column 3");
  expectContains(msg, "unterminated '['");
}

TEST(ParseErrors, MalformedDisjunctionSuffix) {
  // ']' followed by junk that is not '^count'.
  const std::string msg = parseError("M M\n", "M [PO]x\n");
  expectContains(msg, "edge constraint line 1");
  expectContains(msg, "malformed disjunction '[PO]x'");
}

TEST(ParseErrors, EmptyDisjunction) {
  const std::string msg = parseError("M []\n", "M M\n");
  expectContains(msg, "node constraint line 1");
  expectContains(msg, "column 3");
  expectContains(msg, "empty disjunction in '[]'");
}

TEST(ParseErrors, DegreeMismatchWithinSection) {
  const std::string msg = parseError("M M M\nP O\n", "M M\n");
  expectContains(msg, "node constraint line 2");
  expectContains(msg, "configuration degree 2");
  expectContains(msg, "first configuration (3)");
}

TEST(ParseErrors, EmptySections) {
  expectContains(parseError("", "M M\n"), "no node configurations");
  expectContains(parseError("M M\n# only a comment\n", ""),
                 "no edge configurations");
}

TEST(ParseErrors, CommentsAndBlankLinesDoNotShiftLineNumbers) {
  // Line numbers refer to physical lines of the section text, so the
  // diagnostic still points at the right place in the user's file.
  const std::string msg = parseError("# header\n\nM M\nP O^\n", "M M\n");
  expectContains(msg, "node constraint line 4");
  expectContains(msg, "empty exponent in 'O^'");
}

TEST(ParseErrors, StandaloneConfigurationParser) {
  Alphabet alphabet;
  EXPECT_EQ(parseConfiguration("M^2 [PO]", alphabet).degree(), 3u);
  try {
    (void)parseConfiguration("M [X", alphabet);
    FAIL() << "expected failure";
  } catch (const Error& e) {
    // No section context here; column and token still present.
    expectContains(e.what(), "column 3");
    expectContains(e.what(), "unterminated '['");
  }
}

// -- parseProblemText hardening (src/io/serialize.cpp) ---------------------
// Pinned regression inputs for every rejection path; byte-identical copies
// live in the fuzz corpus under tests/data/fuzz/parse/.

std::string textParseError(std::string_view text) {
  try {
    (void)io::parseProblemText(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parseProblemText failure for: " << text;
  return {};
}

TEST(ParseErrors, DuplicateAlphabetHeaderLabel) {
  const std::string msg =
      textParseError("# alphabet: M P M\nM M M\n\nM M\n");
  expectContains(msg, "duplicate label 'M' in alphabet header");
  expectContains(msg, "positions 0 and 2");
}

TEST(ParseErrors, OverlongLineNamesTheLineAndLimit) {
  const std::string longLine(io::kMaxLineBytes + 1, 'M');
  const std::string msg = textParseError("M M\n" + longLine + "\n\nM M\n");
  expectContains(msg, "line 2");
  expectContains(msg, std::to_string(io::kMaxLineBytes + 1) + " bytes");
  expectContains(msg, "limit " + std::to_string(io::kMaxLineBytes));
}

TEST(ParseErrors, NonUtf8ByteNamesByteAndOffset) {
  // 0xFF can never appear in UTF-8.
  const std::string msg = textParseError(std::string("M M\n\xFF\n"));
  expectContains(msg, "invalid UTF-8 byte 0xFF at offset 4");
}

TEST(ParseErrors, StrayContinuationByteRejected) {
  const std::string msg = textParseError(std::string("\x80M M\n"));
  expectContains(msg, "invalid UTF-8 byte 0x80 at offset 0");
}

TEST(ParseErrors, TruncatedMultibyteSequenceRejected) {
  // 0xC3 promises one continuation byte; the input ends instead.
  const std::string msg = textParseError(std::string("M M\nM M\n\xC3"));
  expectContains(msg, "invalid UTF-8 byte 0xC3");
}

TEST(ParseErrors, OverlongEncodingRejected) {
  // 0xC0 0xAF is the classic overlong '/'.
  const std::string msg = textParseError(std::string("M M\n\xC0\xAF\n"));
  expectContains(msg, "invalid UTF-8 byte 0xC0");
}

TEST(ParseErrors, Utf8SurrogateRejected) {
  // 0xED 0xA0 0x80 encodes the surrogate U+D800.
  const std::string msg = textParseError(std::string("M M\n\xED\xA0\x80\n"));
  expectContains(msg, "invalid UTF-8 byte 0xA0");
}

TEST(ParseErrors, ValidUtf8AndHeadersStillParse) {
  // Multibyte UTF-8 in comments must sail through the validator.
  const Problem p = io::parseProblemText(
      "# h\xC3\xA9\x61\x64\x65r \xE2\x9C\x93\n"
      "# alphabet: M P O\nM M M\nP O^2\n\nM [P O]\n");
  EXPECT_EQ(p.alphabet.size(), 3);
  EXPECT_EQ(p.node.degree(), 3);
}

TEST(ParseErrors, GoodInputStillParses) {
  // Guard against diagnostics firing on valid syntax.
  const Problem p = Problem::parse("M^3\nP O^2\n", "M [P O]\nO O\n");
  EXPECT_EQ(p.node.degree(), 3u);
  EXPECT_EQ(p.alphabet.size(), 3u);
}

}  // namespace
}  // namespace relb::re
