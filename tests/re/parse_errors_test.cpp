// Negative parse tests: every diagnostic must name the section, the line,
// the 1-based column, and quote the offending token, so that a malformed
// problem file is fixable from the message alone.
#include <gtest/gtest.h>

#include <string>

#include "re/problem.hpp"

namespace relb::re {
namespace {

std::string parseError(std::string_view node, std::string_view edge) {
  try {
    (void)Problem::parse(node, edge);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse failure for node=" << node
                << " edge=" << edge;
  return {};
}

void expectContains(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message: " << message << "\nexpected to contain: " << needle;
}

TEST(ParseErrors, BadExponentNamesLineColumnAndToken) {
  const std::string msg = parseError("M M\nP O^x\n", "M M\n");
  expectContains(msg, "node constraint line 2");
  expectContains(msg, "column 3");
  expectContains(msg, "bad exponent 'x' in 'O^x'");
}

TEST(ParseErrors, EmptyExponent) {
  const std::string msg = parseError("M^ M\n", "M M\n");
  expectContains(msg, "node constraint line 1");
  expectContains(msg, "column 1");
  expectContains(msg, "empty exponent in 'M^'");
}

TEST(ParseErrors, ExponentOverflow) {
  const std::string msg =
      parseError("M^99999999999999999999 M\n", "M M\n");
  expectContains(msg, "exponent too large in 'M^99999999999999999999'");
}

TEST(ParseErrors, UnterminatedDisjunctionInEdgeSection) {
  const std::string msg = parseError("M M\n", "M [PO\n");
  expectContains(msg, "edge constraint line 1");
  expectContains(msg, "column 3");
  expectContains(msg, "unterminated '['");
}

TEST(ParseErrors, MalformedDisjunctionSuffix) {
  // ']' followed by junk that is not '^count'.
  const std::string msg = parseError("M M\n", "M [PO]x\n");
  expectContains(msg, "edge constraint line 1");
  expectContains(msg, "malformed disjunction '[PO]x'");
}

TEST(ParseErrors, EmptyDisjunction) {
  const std::string msg = parseError("M []\n", "M M\n");
  expectContains(msg, "node constraint line 1");
  expectContains(msg, "column 3");
  expectContains(msg, "empty disjunction in '[]'");
}

TEST(ParseErrors, DegreeMismatchWithinSection) {
  const std::string msg = parseError("M M M\nP O\n", "M M\n");
  expectContains(msg, "node constraint line 2");
  expectContains(msg, "configuration degree 2");
  expectContains(msg, "first configuration (3)");
}

TEST(ParseErrors, EmptySections) {
  expectContains(parseError("", "M M\n"), "no node configurations");
  expectContains(parseError("M M\n# only a comment\n", ""),
                 "no edge configurations");
}

TEST(ParseErrors, CommentsAndBlankLinesDoNotShiftLineNumbers) {
  // Line numbers refer to physical lines of the section text, so the
  // diagnostic still points at the right place in the user's file.
  const std::string msg = parseError("# header\n\nM M\nP O^\n", "M M\n");
  expectContains(msg, "node constraint line 4");
  expectContains(msg, "empty exponent in 'O^'");
}

TEST(ParseErrors, StandaloneConfigurationParser) {
  Alphabet alphabet;
  EXPECT_EQ(parseConfiguration("M^2 [PO]", alphabet).degree(), 3u);
  try {
    (void)parseConfiguration("M [X", alphabet);
    FAIL() << "expected failure";
  } catch (const Error& e) {
    // No section context here; column and token still present.
    expectContains(e.what(), "column 3");
    expectContains(e.what(), "unterminated '['");
  }
}

TEST(ParseErrors, GoodInputStillParses) {
  // Guard against diagnostics firing on valid syntax.
  const Problem p = Problem::parse("M^3\nP O^2\n", "M [P O]\nO O\n");
  EXPECT_EQ(p.node.degree(), 3u);
  EXPECT_EQ(p.alphabet.size(), 3u);
}

}  // namespace
}  // namespace relb::re
