#include "re/label_set.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

TEST(LabelSet, EmptyByDefault) {
  LabelSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
}

TEST(LabelSet, InsertEraseContains) {
  LabelSet s;
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(LabelSet, InitializerList) {
  const LabelSet s{0, 2, 5};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(5));
}

TEST(LabelSet, FullSet) {
  EXPECT_EQ(LabelSet::full(0).size(), 0);
  EXPECT_EQ(LabelSet::full(5).size(), 5);
  EXPECT_EQ(LabelSet::full(32).size(), 32);
  EXPECT_TRUE(LabelSet::full(32).contains(31));
}

TEST(LabelSet, SubsetRelations) {
  const LabelSet a{1, 2};
  const LabelSet b{1, 2, 3};
  EXPECT_TRUE(a.subsetOf(b));
  EXPECT_TRUE(a.properSubsetOf(b));
  EXPECT_FALSE(b.subsetOf(a));
  EXPECT_TRUE(a.subsetOf(a));
  EXPECT_FALSE(a.properSubsetOf(a));
}

TEST(LabelSet, SetAlgebra) {
  const LabelSet a{1, 2};
  const LabelSet b{2, 3};
  EXPECT_EQ((a | b), (LabelSet{1, 2, 3}));
  EXPECT_EQ((a & b), (LabelSet{2}));
  EXPECT_EQ((a - b), (LabelSet{1}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(LabelSet{3, 4}));
}

TEST(LabelSet, MinAndToVector) {
  const LabelSet s{4, 1, 9};
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.toVector(), (std::vector<Label>{1, 4, 9}));
}

TEST(LabelSet, ForEachLabelVisitsInOrder) {
  const LabelSet s{0, 3, 6};
  std::vector<Label> seen;
  forEachLabel(s, [&](Label l) { seen.push_back(l); });
  EXPECT_EQ(seen, (std::vector<Label>{0, 3, 6}));
}

}  // namespace
}  // namespace relb::re
