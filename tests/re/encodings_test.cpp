#include "re/encodings.hpp"

#include <gtest/gtest.h>

#include "re/diagram.hpp"
#include "re/re_step.hpp"
#include "re/rename.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

TEST(MaximalMatching, Encoding) {
  const auto p = maximalMatchingProblem(3);
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  // Saturated node: M O O; unmatched node: P P P.
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({m, o, o}, 3)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({pp, pp, pp}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({m, m, o}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({m, pp, o}, 3)));
  // Edges: MM (matched), PO (unmatched node next to saturated), OO.
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({m, m}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({pp, o}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({o, o}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({pp, pp}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({m, pp}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({m, o}, 3)));
}

TEST(MaximalMatching, ZeroRoundBehaviorDependsOnPorts) {
  for (Count delta : {2, 3, 6}) {
    const auto p = maximalMatchingProblem(delta);
    // On the symmetric-port family the ports form a Delta-edge coloring and
    // "match along color 0" is a 0-round perfect (hence maximal) matching --
    // this is exactly why matching lower bounds need instances other than
    // the Lemma 12 family.
    EXPECT_TRUE(zeroRoundSolvableSymmetricPorts(p));
    // Against adversarial ports no 0-round algorithm exists.
    EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(p));
  }
}

TEST(MaximalMatching, SpeedupRunsAndStaysHard) {
  const auto p = maximalMatchingProblem(3);
  const auto sped = speedupStep(p);
  sped.validate();
  // Maximal matching needs Omega(Delta) rounds [BBHORS'19]; in particular
  // one speedup cannot make it 0-round solvable in the plain PN model
  // (adversarial ports).  Note the *symmetric-port* family is genuinely
  // easy for the speedup -- ports there encode a Delta-edge coloring, which
  // helps matching-like problems; only the adversarial check is meaningful
  // here.
  EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(sped));
}

TEST(BMatching, GeneralizesMaximalMatching) {
  EXPECT_TRUE(equivalentUpToRenaming(bMatchingProblem(4, 1),
                                     maximalMatchingProblem(4)));
}

TEST(BMatching, NodeConfigurations) {
  const auto p = bMatchingProblem(5, 3);
  EXPECT_EQ(p.node.size(), 4u);  // i = 0, 1, 2 unsaturated + saturated
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({m, m, pp, pp, pp}, 3)));
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({m, m, m, o, o}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({m, m, m, m, o}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({m, m, o, o, o}, 3)));
}

TEST(BMatching, ParameterValidation) {
  EXPECT_THROW(bMatchingProblem(3, 0), Error);
  EXPECT_THROW(bMatchingProblem(3, 4), Error);
  EXPECT_THROW(bMatchingProblem(1, 1), Error);
}

TEST(CColoring, Encoding) {
  const auto p = cColoringProblem(3, 3);
  EXPECT_EQ(p.alphabet.size(), 3);
  EXPECT_EQ(p.node.size(), 3u);
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({0, 0, 0}, 3)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({0, 0, 1}, 3)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({0, 1}, 3)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({1, 1}, 3)));
}

TEST(CColoring, NotZeroRoundSolvable) {
  // No color is self-compatible, so the symmetric-port family defeats any
  // 0-round algorithm.
  EXPECT_FALSE(zeroRoundSolvableSymmetricPorts(cColoringProblem(2, 3)));
  EXPECT_FALSE(zeroRoundSolvableSymmetricPorts(cColoringProblem(4, 8)));
}

TEST(CColoring, DiagramIsEmpty) {
  // Distinct colors are never interchangeable one-sidedly.
  const auto p = cColoringProblem(3, 4);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  EXPECT_TRUE(rel.diagramEdges().empty());
}

TEST(WeakColoring, Encoding) {
  const auto p = weakColoringProblem(3, 2);
  EXPECT_EQ(p.alphabet.size(), 4);
  const auto p0 = p.alphabet.at("P0");
  const auto c0 = p.alphabet.at("C0");
  const auto p1 = p.alphabet.at("P1");
  const auto c1 = p.alphabet.at("C1");
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({p0, c0, c0}, 4)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({p0, c1, c1}, 4)));
  // Pointer must reach a different color.
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({p0, c1}, 4)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({p0, p1}, 4)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({p0, c0}, 4)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({p0, p0}, 4)));
  // Same-color plain halves may face each other.
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({c0, c0}, 4)));
}

TEST(WeakColoring, NotZeroRoundSolvableButEasy) {
  // Weak 2-coloring is Omega(log* n) [BHOS'19] -- in particular not 0-round.
  EXPECT_FALSE(zeroRoundSolvableSymmetricPorts(weakColoringProblem(3, 2)));
}

TEST(EdgeColoring, Encoding) {
  const auto p = edgeColoringProblem(3, 4);
  EXPECT_EQ(p.alphabet.size(), 4);
  EXPECT_EQ(p.node.size(), 4u);  // C(4,3) subsets
  EXPECT_TRUE(p.node.containsWord(wordFromLabels({0, 1, 2}, 4)));
  EXPECT_FALSE(p.node.containsWord(wordFromLabels({0, 0, 1}, 4)));
  EXPECT_TRUE(p.edge.containsWord(wordFromLabels({2, 2}, 4)));
  EXPECT_FALSE(p.edge.containsWord(wordFromLabels({1, 2}, 4)));
}

TEST(EdgeColoring, SymmetricPortsMakeItTrivial) {
  // On the symmetric-port family the ports themselves are a Delta-edge
  // coloring, so outputting "my port number" works: color i is
  // self-compatible and the rainbow configuration exists.
  EXPECT_TRUE(zeroRoundSolvableSymmetricPorts(edgeColoringProblem(3, 3)));
  // Against adversarial ports it is not 0-round solvable (same color may
  // collide).
  EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(edgeColoringProblem(3, 3)));
}

TEST(EdgeColoring, Guards) {
  EXPECT_THROW(edgeColoringProblem(5, 4), Error);   // c < delta
  EXPECT_THROW(edgeColoringProblem(4, 13), Error);  // c too large
}

}  // namespace
}  // namespace relb::re
