#include "re/alphabet.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

TEST(Alphabet, AddAndLookup) {
  Alphabet a;
  EXPECT_EQ(a.add("M"), 0);
  EXPECT_EQ(a.add("P"), 1);
  EXPECT_EQ(a.size(), 2);
  EXPECT_EQ(a.at("M"), 0);
  EXPECT_EQ(a.at("P"), 1);
  EXPECT_EQ(a.name(0), "M");
  EXPECT_FALSE(a.find("O").has_value());
  EXPECT_THROW((void)a.at("O"), Error);
}

TEST(Alphabet, RejectsDuplicatesAndEmptyNames) {
  Alphabet a;
  a.add("M");
  EXPECT_THROW(a.add("M"), Error);
  EXPECT_THROW(a.add(""), Error);
}

TEST(Alphabet, GetOrAddIsIdempotent) {
  Alphabet a;
  EXPECT_EQ(a.getOrAdd("X"), 0);
  EXPECT_EQ(a.getOrAdd("X"), 0);
  EXPECT_EQ(a.size(), 1);
}

TEST(Alphabet, OverflowRejected) {
  Alphabet a;
  for (int i = 0; i < kMaxLabels; ++i) a.add("L" + std::to_string(i));
  EXPECT_THROW(a.add("Overflow"), Error);
}

TEST(Alphabet, RenderSingleAndSets) {
  Alphabet a({"M", "P", "O"});
  EXPECT_EQ(a.render(LabelSet{0}), "M");
  EXPECT_EQ(a.render(LabelSet{1, 2}), "[PO]");
  EXPECT_EQ(a.render(LabelSet{}), "[]");
}

TEST(Alphabet, RenderMultiCharNamesWithSpaces) {
  Alphabet a({"M1", "P"});
  EXPECT_EQ(a.render(LabelSet{0, 1}), "[M1 P]");
}

TEST(Alphabet, VectorConstructor) {
  const Alphabet a({"A", "B"});
  EXPECT_EQ(a.size(), 2);
  EXPECT_EQ(a.at("B"), 1);
}

}  // namespace
}  // namespace relb::re
