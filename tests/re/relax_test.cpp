#include "re/relax.hpp"

#include <gtest/gtest.h>

#include "re/encodings.hpp"
#include "re/problem.hpp"

namespace relb::re {
namespace {

TEST(ZeroRoundRelabeling, IdentityAlwaysWorks) {
  const auto p = misProblem(3);
  EXPECT_TRUE(isZeroRoundRelabeling(p, p, {0, 1, 2}));
}

TEST(ZeroRoundRelabeling, ColoringDropsToFewerColorsFails) {
  // Collapsing two colors of a proper coloring breaks the edge constraint.
  const auto c3 = cColoringProblem(3, 3);
  EXPECT_FALSE(isZeroRoundRelabeling(c3, c3, {0, 0, 2}));
}

TEST(ZeroRoundRelabeling, ColoringEmbedsIntoMoreColors) {
  const auto c3 = cColoringProblem(3, 3);
  const auto c4 = cColoringProblem(3, 4);
  EXPECT_TRUE(isZeroRoundRelabeling(c3, c4, {0, 1, 2}));
  // Any injective map works.
  EXPECT_TRUE(isZeroRoundRelabeling(c3, c4, {3, 1, 0}));
}

TEST(ZeroRoundRelabeling, MisToDominatingSetStyleRelaxation) {
  // MIS solves the "M or pointer" relaxation where O may also face P
  // (strictly more permissive edge constraint).
  const auto mis = misProblem(3);
  const auto relaxed = Problem::parse("M^3\nP O^2\n", "M [PO]\nO [OP]\n");
  EXPECT_TRUE(isZeroRoundRelabeling(mis, relaxed, {0, 1, 2}));
  // The reverse direction must fail (PO is allowed in `relaxed` only).
  EXPECT_FALSE(isZeroRoundRelabeling(relaxed, mis, {0, 1, 2}));
}

TEST(ZeroRoundRelabeling, NonInjectiveMapsAllowed) {
  // Collapsing P and O is fine if the target accepts the merged label
  // everywhere both appeared.
  const auto from = Problem::parse("A B\n", "A B\nB B\nA A\n");
  const auto to = Problem::parse("C C\n", "C C\n");
  EXPECT_TRUE(isZeroRoundRelabeling(from, to, {0, 0}));
}

TEST(ZeroRoundRelabeling, Validation) {
  const auto p = misProblem(3);
  EXPECT_THROW((void)isZeroRoundRelabeling(p, p, {0, 1}), Error);
  EXPECT_THROW((void)isZeroRoundRelabeling(p, p, {0, 1, 9}), Error);
  // Degree mismatch is a (non-throwing) failure.
  EXPECT_FALSE(isZeroRoundRelabeling(p, misProblem(4), {0, 1, 2}));
}

TEST(ZeroRoundRelabeling, MatchesMonotoneFamilyRelation) {
  // b-matching with larger b is a relaxation: a maximal matching is NOT
  // automatically a maximal 2-matching (maximality differs), so the naive
  // identity relabeling must fail -- guarding against a tempting wrong
  // simplification.
  const auto b1 = bMatchingProblem(4, 1);
  const auto b2 = bMatchingProblem(4, 2);
  EXPECT_FALSE(isZeroRoundRelabeling(b1, b2, {0, 1, 2}));
}

// -- degenerate inputs -----------------------------------------------------

Problem emptyProblem(Count delta) {
  // Unsatisfiable: the node language is empty.  Cannot come from
  // Problem::parse (which requires configurations), so built by hand.
  Problem p;
  p.alphabet = Alphabet({"A"});
  p.node = Constraint(delta, {});
  p.edge = Constraint(2, {});
  return p;
}

TEST(ZeroRoundRelabeling, EmptyProblemIsVacuouslyRelabelable) {
  // No configurations in `from` means no obligation: any map works,
  // whatever the target -- including another empty problem.
  const auto empty = emptyProblem(3);
  EXPECT_TRUE(isZeroRoundRelabeling(empty, empty, {0}));
  EXPECT_TRUE(isZeroRoundRelabeling(empty, misProblem(3), {0}));
}

TEST(ZeroRoundRelabeling, NothingRelabelsIntoAnEmptyProblem) {
  // The reverse direction must fail: a non-empty language cannot map into
  // the empty one.
  EXPECT_FALSE(isZeroRoundRelabeling(misProblem(3), emptyProblem(3),
                                     {0, 0, 0}));
}

TEST(ZeroRoundRelabeling, SingleLabelAlphabet) {
  const auto p = Problem::parse("A A A\n", "A A\n");
  EXPECT_TRUE(isZeroRoundRelabeling(p, p, {0}));
  // A single-label problem maps into any problem whose languages accept the
  // image label everywhere...
  const auto loose = Problem::parse("B B B\nC C C\n", "B B\nC [BC]\n");
  EXPECT_TRUE(isZeroRoundRelabeling(p, loose, {0}));
  EXPECT_TRUE(isZeroRoundRelabeling(p, loose, {1}));
  // ...and not into one that rejects it at the edge.
  const auto matching = Problem::parse("B B B\nC C C\n", "B C\n");
  EXPECT_FALSE(isZeroRoundRelabeling(p, matching, {0}));
}

}  // namespace
}  // namespace relb::re
