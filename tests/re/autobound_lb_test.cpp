// Tests for the automatic lower-bound search (speedup + hardness-preserving
// label merging) and the exact 0-round analysis with edge-port inputs it
// rests on.
#include <gtest/gtest.h>

#include "re/autobound.hpp"
#include "re/cycle_verifier.hpp"
#include "re/encodings.hpp"
#include "re/tree_verifier.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

TEST(ZeroRoundWithEdgeInputs, AgreesWithBruteForceOnCycles) {
  for (const auto& p :
       {misProblem(2), sinklessOrientationProblem(2), cColoringProblem(2, 2),
        cColoringProblem(2, 3), maximalMatchingProblem(2),
        Problem::parse("[ZO] [ZO]\n", "Z O\n"),
        Problem::parse("O^2\n", "O O\n")}) {
    EXPECT_EQ(zeroRoundSolvableWithEdgeInputs(p), cycleSolvable(p, 0))
        << p.render();
  }
}

TEST(ZeroRoundWithEdgeInputs, AgreesWithBruteForceOnTrees) {
  for (const auto& p :
       {misProblem(3), sinklessOrientationProblem(3), cColoringProblem(3, 4),
        maximalMatchingProblem(3), Problem::parse("[ZO]^3\n", "Z O\n")}) {
    EXPECT_EQ(zeroRoundSolvableWithEdgeInputs(p), treeSolvable3(p, 0))
        << p.render();
  }
}

TEST(ZeroRoundWithEdgeInputs, StrictlyStrongerThanSideBlindAnalysis) {
  // The side-output problem is solvable only because edge ports are input.
  const auto orient = Problem::parse("[ZO] [ZO]\n", "Z O\n");
  EXPECT_TRUE(zeroRoundSolvableWithEdgeInputs(orient));
  EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(orient));
}

TEST(AutoLowerBound, SinklessOrientationRunsToStepLimit) {
  // SO is a fixed point: the chain never trivializes, so the certificate
  // grows with the step budget (the Omega(log n) behavior, truncated).
  AutoLowerBoundOptions options;
  options.maxSteps = 4;
  const auto lb = autoLowerBound(sinklessOrientationProblem(3), options);
  EXPECT_EQ(lb.rounds, 4);
  EXPECT_EQ(lb.reason, StopReason::kStepLimit);
  for (const int labels : lb.labelsPerStep) EXPECT_EQ(labels, 2);
}

TEST(AutoLowerBound, MisCertifiesTwoAndThenSticks) {
  // One speedup stays within the label budget (6 labels); the second blows
  // up and no hardness-preserving merge brings it back -- the mechanized
  // version of the paper's observation that the plain similarity approach
  // fails for MIS (Section 1.2).
  AutoLowerBoundOptions options;
  options.maxSteps = 4;
  options.maxLabels = 8;
  const auto lb = autoLowerBound(misProblem(3), options);
  EXPECT_EQ(lb.rounds, 2);
  EXPECT_EQ(lb.reason, StopReason::kLabelBudget);
  EXPECT_EQ(lb.labelsPerStep, (std::vector<int>{3, 6}));
}

TEST(AutoLowerBound, MatchingMergesAndCertifiesThree) {
  AutoLowerBoundOptions options;
  options.maxSteps = 3;
  options.maxLabels = 8;
  const auto lb = autoLowerBound(maximalMatchingProblem(3), options);
  EXPECT_GE(lb.rounds, 3);
}

TEST(AutoLowerBound, TrivialProblemCertifiesNothing) {
  const auto p = Problem::parse("O^3\n", "O O\n");
  const auto lb = autoLowerBound(p);
  EXPECT_EQ(lb.rounds, 0);
  EXPECT_EQ(lb.reason, StopReason::kZeroRoundSolvable);
}

TEST(AutoLowerBound, CertificateConsistentWithBruteForce) {
  // If autoLowerBound certifies T(p) >= 2, the brute-force 1-round solver
  // must agree that p is not solvable in 1 round.
  for (const auto& p : {misProblem(3), maximalMatchingProblem(3)}) {
    AutoLowerBoundOptions options;
    options.maxSteps = 2;
    const auto lb = autoLowerBound(p, options);
    if (lb.rounds >= 2) {
      try {
        EXPECT_FALSE(treeSolvable3(p, 1, 20'000));
      } catch (const Error&) {
        // undecided within budget is acceptable
      }
    }
  }
}

}  // namespace
}  // namespace relb::re
