#include "re/zero_round.hpp"

#include <gtest/gtest.h>

#include "re/problem.hpp"

namespace relb::re {
namespace {

TEST(ZeroRound, MisNotSolvable) {
  // Lemma 12 specialized to MIS: every node configuration contains a label
  // that is not self-compatible (M in M^Delta, P in PO^{Delta-1}).
  for (Count delta : {2, 3, 8}) {
    const auto p = misProblem(delta);
    EXPECT_FALSE(zeroRoundSolvableSymmetricPorts(p));
    EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(p));
    EXPECT_GT(randomizedFailureLowerBound(p), 0.0);
  }
}

TEST(ZeroRound, SelfCompatibleLabelsOfMis) {
  const auto p = misProblem(3);
  EXPECT_EQ(selfCompatibleLabels(p), LabelSet{p.alphabet.at("O")});
  EXPECT_TRUE(selfCompatible(p, p.alphabet.at("O")));
  EXPECT_FALSE(selfCompatible(p, p.alphabet.at("M")));
  EXPECT_FALSE(selfCompatible(p, p.alphabet.at("P")));
}

TEST(ZeroRound, TrivialProblemSolvable) {
  // "Output O everywhere" with OO allowed: solvable in zero rounds.
  const auto p = Problem::parse("O^3\n", "O O\n");
  EXPECT_TRUE(zeroRoundSolvableSymmetricPorts(p));
  EXPECT_TRUE(zeroRoundSolvableAdversarialPorts(p));
  EXPECT_EQ(randomizedFailureLowerBound(p), 0.0);
  const auto witness = zeroRoundSymmetricWitness(p);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ((*witness)[p.alphabet.at("O")], 3);
}

TEST(ZeroRound, SymmetricButNotAdversarial) {
  // Proper 2-labeling of edges: with symmetric ports, A on port 1 and B on
  // port 2 works (each edge sees AA or BB -- wait, we need a case where the
  // symmetric family is solvable but adversarial ports are not).
  // Node: A B ; Edge: AA, BB.  Symmetric ports: both endpoints of an edge
  // use the same port, hence the same label -> AA or BB, fine.
  // Adversarial: A may face B -> AB not allowed.
  const auto p = Problem::parse("A B\n", "A A\nB B\n");
  EXPECT_TRUE(zeroRoundSolvableSymmetricPorts(p));
  EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(p));
}

TEST(ZeroRound, WitnessUsesOnlySelfCompatibleLabels) {
  // Node [AB][AB]C with edges AA, CC, BC: B is not self-compatible, so a
  // witness must pick A for both [AB] slots.
  const auto p = Problem::parse("[AB] [AB] C\n", "A A\nC C\nB C\n");
  const auto witness = zeroRoundSymmetricWitness(p);
  ASSERT_TRUE(witness.has_value());
  const auto good = selfCompatibleLabels(p);
  for (std::size_t l = 0; l < witness->size(); ++l) {
    if ((*witness)[l] > 0) {
      EXPECT_TRUE(good.contains(static_cast<Label>(l)))
          << "label " << p.alphabet.name(static_cast<Label>(l));
    }
  }
  EXPECT_TRUE(p.node.containsWord(*witness));
}

TEST(ZeroRound, GreedyWitnessAcrossMultipleConfigs) {
  // First config is infeasible (B only), second works.
  const auto p = Problem::parse("B^2\nA^2\n", "A A\nA B\n");
  EXPECT_TRUE(zeroRoundSolvableSymmetricPorts(p));
}

TEST(ZeroRound, FailureBoundFormula) {
  const auto p = misProblem(4);  // q = 2 configs, delta = 4
  EXPECT_DOUBLE_EQ(randomizedFailureLowerBound(p), 1.0 / 64.0);
}

}  // namespace
}  // namespace relb::re
