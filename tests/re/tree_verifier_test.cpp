// The Delta = 3 companion of cycle_verifier_test.cpp: exact T-round
// solvability on 3-regular high-girth trees, checked against known
// complexities and against the speedup operator (Theorem 3) -- now in the
// degree regime where the paper's own problems live.
#include "re/tree_verifier.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/family.hpp"
#include "re/encodings.hpp"
#include "re/re_step.hpp"

namespace relb::re {
namespace {

constexpr long kTestBudget = 15'000;

enum class Tri { kYes, kNo, kUndecided };

Tri solvable(const Problem& p, int radius) {
  try {
    return treeSolvable3(p, radius, kTestBudget) ? Tri::kYes : Tri::kNo;
  } catch (const Error&) {
    return Tri::kUndecided;
  }
}

TEST(TreeSolvable, TrivialProblem) {
  const auto p = Problem::parse("O^3\n", "O O\n");
  EXPECT_TRUE(treeSolvable3(p, 0));
  EXPECT_TRUE(treeSolvable3(p, 1));
}

TEST(TreeSolvable, EdgeSideOutputSolvableAtZero) {
  const auto orient = Problem::parse("[ZO]^3\n", "Z O\n");
  EXPECT_TRUE(treeSolvable3(orient, 0));
  EXPECT_TRUE(treeSolvable3(orient, 1));
}

TEST(TreeSolvable, MisUnsolvableAtSmallRadius) {
  // The paper's central problem at Delta = 3: MIS needs Omega(log Delta) >>
  // O(1) rounds; certainly not 0 or 1.
  const auto mis = misProblem(3);
  EXPECT_FALSE(treeSolvable3(mis, 0));
  EXPECT_FALSE(treeSolvable3(mis, 1));
}

TEST(TreeSolvable, FamilyProblemUnsolvableAtRadiusZero) {
  // Pi_3(2, 0): the family at Delta = 3.  Radius 0 refutes quickly; at
  // radius 1 the refutation search is exponential (like sinkless
  // orientation), so with a small budget the answer must be "no" or
  // "undecided" -- never "yes".
  const auto pi = core::familyProblem(3, 2, 0);
  EXPECT_FALSE(treeSolvable3(pi, 0));
  bool solvedAtOne = false;
  try {
    solvedAtOne = treeSolvable3(pi, 1, 2'000);
  } catch (const Error&) {
    solvedAtOne = false;  // undecided within budget
  }
  EXPECT_FALSE(solvedAtOne);
}

TEST(TreeSolvable, ColoringUnsolvable) {
  EXPECT_FALSE(treeSolvable3(cColoringProblem(3, 3), 0));
  EXPECT_FALSE(treeSolvable3(cColoringProblem(3, 3), 1));
  EXPECT_FALSE(treeSolvable3(maximalMatchingProblem(3), 1));
}

TEST(TreeSolvable, SinklessOrientationIsTheHardInstance) {
  const auto so = sinklessOrientationProblem(3);
  EXPECT_FALSE(treeSolvable3(so, 0));
  // At T = 1 the refutation is a genuine exists-forall search; the budget
  // mechanism must kick in rather than hang (documented limitation).
  EXPECT_EQ(solvable(so, 1), Tri::kUndecided);
}

TEST(TreeSolvable, Guards) {
  EXPECT_THROW((void)treeSolvable3(misProblem(4), 0), Error);
  EXPECT_THROW((void)treeSolvable3(misProblem(3), 2), Error);
}

TEST(Theorem3Tree, HoldsOnDecidedCatalog) {
  for (const auto& p :
       {misProblem(3), cColoringProblem(3, 3), maximalMatchingProblem(3),
        Problem::parse("[ZO]^3\n", "Z O\n")}) {
    const auto sped = speedupStep(p);
    const Tri lhs = solvable(p, 1);
    const Tri rhs = solvable(sped, 0);
    if (lhs == Tri::kUndecided || rhs == Tri::kUndecided) continue;
    EXPECT_EQ(lhs == Tri::kYes, rhs == Tri::kYes) << p.render();
  }
}

Problem randomTreeProblem(std::mt19937& rng, int nLabels) {
  Problem p;
  for (int i = 0; i < nLabels; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << nLabels) - 1);
  std::bernoulli_distribution coin(0.5);
  Constraint node(3, {});
  const int cnt = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int i = 0; i < cnt; ++i) {
    std::vector<Group> groups;
    Count remaining = 3;
    while (remaining > 0) {
      const Count c =
          std::uniform_int_distribution<Count>(1, remaining)(rng);
      groups.push_back(
          {LabelSet(static_cast<std::uint32_t>(setDist(rng))), c});
      remaining -= c;
    }
    node.add(Configuration(std::move(groups)));
  }
  p.node = std::move(node);
  Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < nLabels; ++a) {
    for (int b = a; b < nLabels; ++b) {
      if (coin(rng)) {
        edge.add(Configuration({{LabelSet{static_cast<Label>(a)}, 1},
                                {LabelSet{static_cast<Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) edge.add(Configuration({{LabelSet{0}, 2}}));
  p.edge = std::move(edge);
  return p;
}

class Theorem3TreeRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem3TreeRandom, SpeedupMatchesBruteForce) {
  std::mt19937 rng(GetParam());
  const auto p = randomTreeProblem(rng, GetParam() % 2 ? 2 : 3);
  Problem sped;
  try {
    sped = speedupStep(p);
  } catch (const Error&) {
    GTEST_SKIP() << "speedup exceeded engine guards";
  }
  const Tri lhs = solvable(p, 1);
  const Tri rhs = solvable(sped, 0);
  if (lhs == Tri::kUndecided || rhs == Tri::kUndecided) {
    GTEST_SKIP() << "search budget exceeded";
  }
  EXPECT_EQ(lhs == Tri::kYes, rhs == Tri::kYes) << p.render();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3TreeRandom, ::testing::Range(1u, 7u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb::re
