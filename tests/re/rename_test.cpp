#include "re/rename.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

TEST(Rename, IdentityKeepsProblem) {
  const auto p = misProblem(3);
  const auto q = renameProblem(p, {0, 1, 2}, p.alphabet);
  EXPECT_EQ(q.node, p.node);
  EXPECT_EQ(q.edge, p.edge);
}

TEST(Rename, PermutationMapsConstraints) {
  const auto p = misProblem(3);
  Alphabet shuffled({"O", "M", "P"});
  // M->1 (name M), P->2 (name P), O->0 (name O) in the new alphabet.
  const auto q = renameProblem(p, {1, 2, 0}, shuffled);
  EXPECT_TRUE(q.node.containsWord(wordFromLabels({1, 1, 1}, 3)));  // M^3
  EXPECT_TRUE(q.edge.containsWord(wordFromLabels({0, 0}, 3)));     // OO
  EXPECT_FALSE(q.edge.containsWord(wordFromLabels({1, 1}, 3)));    // MM
}

TEST(Rename, RejectsNonInjective) {
  const auto p = misProblem(3);
  EXPECT_THROW(renameProblem(p, {0, 0, 1}, p.alphabet), Error);
  EXPECT_THROW(renameProblem(p, {0, 1}, p.alphabet), Error);
}

TEST(Isomorphism, DetectsRenamedMis) {
  const auto p = misProblem(3);
  const auto q = Problem::parse("x^3\ny z^2\n", "x [yz]\nz z\n");
  const auto iso = findIsomorphism(p, q);
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ((*iso)[p.alphabet.at("M")], q.alphabet.at("x"));
  EXPECT_EQ((*iso)[p.alphabet.at("P")], q.alphabet.at("y"));
  EXPECT_EQ((*iso)[p.alphabet.at("O")], q.alphabet.at("z"));
}

TEST(Isomorphism, SeesThroughDifferentCondensations) {
  // Same language written with different condensed configurations.
  const auto a = Problem::parse("[AB] [AB]\n", "[AB] [AB]\n");
  const auto b = Problem::parse("A A\nA B\nB B\n", "A [AB]\nB B\n");
  EXPECT_TRUE(equivalentUpToRenaming(a, b));
}

TEST(Isomorphism, RejectsDifferentProblems) {
  const auto p = misProblem(3);
  const auto so = sinklessOrientationProblem(3);
  EXPECT_FALSE(equivalentUpToRenaming(p, so));
  EXPECT_FALSE(equivalentUpToRenaming(misProblem(3), misProblem(4)));
}

TEST(Isomorphism, DifferentAlphabetSizes) {
  const auto a = Problem::parse("A^2\n", "A A\n");
  const auto b = Problem::parse("A B\n", "A B\n");
  EXPECT_FALSE(equivalentUpToRenaming(a, b));
}

}  // namespace
}  // namespace relb::re
