// Tests for the R / Rbar operators, including brute-force reference
// implementations of the definitions from Section 2.3 and the classic
// sinkless-orientation fixed point as an end-to-end ground truth.
#include "re/re_step.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "re/rename.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

// ---------------------------------------------------------------------------
// Brute-force reference implementations (straight from the definitions).
// ---------------------------------------------------------------------------

// All non-empty subsets of the first `n` labels.
std::vector<LabelSet> allSubsets(int n) {
  std::vector<LabelSet> out;
  for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << n); ++mask) {
    out.push_back(LabelSet(mask));
  }
  return out;
}

// Reference edge side of R: all maximal A1A2 with A1 x A2 in E.
std::vector<std::pair<LabelSet, LabelSet>> refMaximalEdgePairs(
    const Problem& p) {
  const int n = p.alphabet.size();
  std::vector<std::pair<LabelSet, LabelSet>> valid;
  for (const LabelSet a : allSubsets(n)) {
    for (const LabelSet b : allSubsets(n)) {
      if (b.bits() < a.bits()) continue;
      bool ok = true;
      forEachLabel(a, [&](Label la) {
        forEachLabel(b, [&](Label lb) {
          Word w(static_cast<std::size_t>(n), 0);
          ++w[la];
          ++w[lb];
          if (!p.edge.containsWord(w)) ok = false;
        });
      });
      if (ok) valid.emplace_back(a, b);
    }
  }
  std::vector<std::pair<LabelSet, LabelSet>> maximal;
  for (const auto& pr : valid) {
    bool dominated = false;
    for (const auto& q : valid) {
      if (q == pr) continue;
      const bool straight =
          pr.first.subsetOf(q.first) && pr.second.subsetOf(q.second);
      const bool swapped =
          pr.first.subsetOf(q.second) && pr.second.subsetOf(q.first);
      if (straight || swapped) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(pr);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

// Words over the fresh alphabet of a StepResult, where each fresh label
// denotes a set of old labels: enumerate every multiset of fresh labels of
// size delta and test "exists choice in the old node constraint" by explicit
// expansion.
std::set<Word> refRNodeLanguage(const Problem& oldP, const StepResult& step) {
  const int nNew = step.problem.alphabet.size();
  const int nOld = oldP.alphabet.size();
  const Count delta = oldP.delta();
  std::set<Word> result;
  std::vector<Label> slots;
  std::function<void(Label)> rec = [&](Label minLabel) {
    if (static_cast<Count>(slots.size()) == delta) {
      // Expand choices with dedupe.
      std::set<Word> level;
      level.insert(Word(static_cast<std::size_t>(nOld), 0));
      for (Label fresh : slots) {
        std::set<Word> next;
        for (const Word& w : level) {
          forEachLabel(step.meaning[fresh], [&](Label oldL) {
            Word e = w;
            ++e[oldL];
            next.insert(std::move(e));
          });
        }
        level = std::move(next);
      }
      const bool anyChoice =
          std::any_of(level.begin(), level.end(), [&](const Word& w) {
            return oldP.node.containsWord(w);
          });
      if (anyChoice) {
        result.insert(wordFromLabels(slots, nNew));
      }
      return;
    }
    for (Label l = minLabel; l < nNew; ++l) {
      slots.push_back(l);
      rec(l);
      slots.pop_back();
    }
  };
  rec(0);
  return result;
}

// Reference Rbar node language over sets: enumerate multisets of *all*
// non-empty subsets (not only right-closed ones), keep those whose every
// choice is in the node constraint, keep the maximal ones, and return the
// union of their slot-set multisets (canonicalized as sorted bitset lists).
std::set<std::vector<std::uint32_t>> refRbarMaximalNodeConfigs(
    const Problem& p) {
  const int n = p.alphabet.size();
  const Count delta = p.delta();
  const auto subsets = allSubsets(n);
  std::vector<std::vector<LabelSet>> valid;
  std::vector<LabelSet> slots;
  std::function<void(std::size_t)> rec = [&](std::size_t minIdx) {
    if (static_cast<Count>(slots.size()) == delta) {
      std::set<Word> level;
      level.insert(Word(static_cast<std::size_t>(n), 0));
      for (const LabelSet s : slots) {
        std::set<Word> next;
        for (const Word& w : level) {
          forEachLabel(s, [&](Label l) {
            Word e = w;
            ++e[l];
            next.insert(std::move(e));
          });
        }
        level = std::move(next);
      }
      const bool all = std::all_of(level.begin(), level.end(),
                                   [&](const Word& w) {
                                     return p.node.containsWord(w);
                                   });
      if (all) valid.push_back(slots);
      return;
    }
    for (std::size_t i = minIdx; i < subsets.size(); ++i) {
      slots.push_back(subsets[i]);
      rec(i);
      slots.pop_back();
    }
  };
  rec(0);

  // Relaxation order via bipartite matching on slots (delta is tiny here, so
  // use brute-force permutations).
  const auto dominatedBy = [&](const std::vector<LabelSet>& x,
                               const std::vector<LabelSet>& y) {
    std::vector<std::size_t> perm(x.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    do {
      bool ok = true;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (!x[i].subsetOf(y[perm[i]])) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
  };

  std::set<std::vector<std::uint32_t>> maximal;
  for (const auto& x : valid) {
    bool dominated = false;
    for (const auto& y : valid) {
      if (x == y) continue;
      if (dominatedBy(x, y) && !dominatedBy(y, x)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      std::vector<std::uint32_t> canon;
      canon.reserve(x.size());
      for (const LabelSet s : x) canon.push_back(s.bits());
      std::sort(canon.begin(), canon.end());
      maximal.insert(std::move(canon));
    }
  }
  return maximal;
}

#define ASSERT_OR_THROW(cond) \
  if (!(cond)) throw Error("test invariant violated: " #cond)

// Canonical multiset view of the engine's Rbar node output.
std::set<std::vector<std::uint32_t>> engineRbarNodeConfigs(
    const StepResult& step) {
  std::set<std::vector<std::uint32_t>> out;
  for (const auto& c : step.problem.node.configurations()) {
    std::vector<std::uint32_t> canon;
    for (const auto& g : c.groups()) {
      ASSERT_OR_THROW(g.set.size() == 1);
      for (Count i = 0; i < g.count; ++i) {
        canon.push_back(step.meaning[g.set.min()].bits());
      }
    }
    std::sort(canon.begin(), canon.end());
    out.insert(std::move(canon));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

TEST(ApplyR, EdgePairsMatchReferenceOnMis) {
  for (Count delta : {2, 3, 4}) {
    const auto p = misProblem(delta);
    auto engine = maximalEdgePairs(p.edge, p.alphabet.size());
    std::sort(engine.begin(), engine.end());
    EXPECT_EQ(engine, refMaximalEdgePairs(p)) << "delta=" << delta;
  }
}

TEST(ApplyR, EdgePairsMatchReferenceOnSinklessOrientation) {
  const auto p = sinklessOrientationProblem(3);
  auto engine = maximalEdgePairs(p.edge, p.alphabet.size());
  std::sort(engine.begin(), engine.end());
  EXPECT_EQ(engine, refMaximalEdgePairs(p));
  // SO: the single maximal pair is {I}{O}.
  ASSERT_EQ(engine.size(), 1u);
  EXPECT_EQ(engine[0].first.size() + engine[0].second.size(), 2);
}

TEST(ApplyR, MeaningSetsAreRightClosed) {
  // Observation 4: every label of R(Pi) is a right-closed set w.r.t. the
  // edge constraint of Pi.
  for (const auto& p : {misProblem(3), sinklessOrientationProblem(3)}) {
    const auto rel = computeStrength(p.edge, p.alphabet.size());
    const auto step = applyR(p);
    for (const LabelSet s : step.meaning) {
      EXPECT_TRUE(rel.isRightClosed(s)) << p.alphabet.render(s);
    }
  }
}

TEST(ApplyR, NodeLanguageMatchesReferenceOnMis) {
  for (Count delta : {2, 3}) {
    const auto p = misProblem(delta);
    const auto step = applyR(p);
    const auto ref = refRNodeLanguage(p, step);
    const auto engineWords = step.problem.node.enumerateWords(
        step.problem.alphabet.size());
    const std::set<Word> engineSet(engineWords.begin(), engineWords.end());
    EXPECT_EQ(engineSet, ref) << "delta=" << delta;
  }
}

TEST(ApplyR, NodeLanguageMatchesReferenceOnSinklessOrientation) {
  const auto p = sinklessOrientationProblem(3);
  const auto step = applyR(p);
  EXPECT_EQ(refRNodeLanguage(p, step),
            [&] {
              const auto words = step.problem.node.enumerateWords(
                  step.problem.alphabet.size());
              return std::set<Word>(words.begin(), words.end());
            }());
}

TEST(ApplyR, WorksForHugeDelta) {
  const Count delta = Count{1} << 20;
  const auto p = misProblem(delta);
  const auto step = applyR(p);
  step.problem.validate();
  EXPECT_EQ(step.problem.delta(), delta);
  // The fresh alphabet of R(MIS) has the right-closed sets that appear in
  // maximal pairs; for MIS these are {M},{O},{MO}... exactly the pairs
  // {M}{PO}... check a couple of structural facts.
  EXPECT_GE(step.problem.alphabet.size(), 2);
  EXPECT_LE(step.problem.alphabet.size(), 7);
}

TEST(ApplyRbar, NodeConfigsMatchReferenceOnMis) {
  for (Count delta : {2, 3}) {
    const auto p = misProblem(delta);
    const auto r = applyR(p);
    const auto rbar = applyRbar(r.problem);
    EXPECT_EQ(engineRbarNodeConfigs(rbar), refRbarMaximalNodeConfigs(r.problem))
        << "delta=" << delta;
  }
}

TEST(ApplyRbar, NodeConfigsMatchReferenceOnSinklessOrientation) {
  const auto p = sinklessOrientationProblem(3);
  const auto r = applyR(p);
  const auto rbar = applyRbar(r.problem);
  EXPECT_EQ(engineRbarNodeConfigs(rbar), refRbarMaximalNodeConfigs(r.problem));
}

TEST(ApplyRbar, RefusesLargeDelta) {
  const auto p = misProblem(64);
  const auto r = applyR(p);
  EXPECT_THROW(applyRbar(r.problem), Error);
}

// The classic ground truth: speeding up sinkless orientation yields the
// "exactly one outgoing edge" variant, which is a fixed point of the
// speedup.
TEST(Speedup, SinklessOrientationReachesFixedPoint) {
  const auto so = sinklessOrientationProblem(3);
  const auto p1 = speedupStep(so);
  const auto p2 = speedupStep(p1);
  EXPECT_TRUE(equivalentUpToRenaming(p1, p2));
  // And the fixed point matches the hand-derived problem:
  // node = o t^{Delta-1}, edge = { to, tt }.
  const auto expected = Problem::parse("o t t\n", "t [ot]\n");
  EXPECT_TRUE(equivalentUpToRenaming(p1, expected));
}

TEST(Speedup, FixedPointIsNotZeroRoundSolvable) {
  const auto so = sinklessOrientationProblem(3);
  const auto p1 = speedupStep(so);
  EXPECT_FALSE(zeroRoundSolvableSymmetricPorts(p1));
}

TEST(Speedup, MisGrowsLabels) {
  // Motivation for the paper's constant-label family: raw round elimination
  // on MIS inflates the alphabet.
  const auto p = misProblem(3);
  const auto p1 = speedupStep(p);
  EXPECT_GT(p1.alphabet.size(), p.alphabet.size());
}

TEST(Speedup, PreservesDeltaAndValidates) {
  const auto p = misProblem(4);
  const auto p1 = speedupStep(p);
  EXPECT_EQ(p1.delta(), 4);
  p1.validate();
}

}  // namespace
}  // namespace relb::re
