#include "re/flow.hpp"

#include <gtest/gtest.h>

namespace relb::re {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.addEdge(0, 1, 5);
  EXPECT_EQ(f.solve(0, 1), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow f(3);
  f.addEdge(0, 1, 7);
  f.addEdge(1, 2, 3);
  EXPECT_EQ(f.solve(0, 2), 3);
}

TEST(MaxFlow, ParallelAdds) {
  MaxFlow f(4);
  f.addEdge(0, 1, 2);
  f.addEdge(1, 3, 2);
  f.addEdge(0, 2, 3);
  f.addEdge(2, 3, 3);
  EXPECT_EQ(f.solve(0, 3), 5);
}

TEST(MaxFlow, RequiresAugmentingPathReassignment) {
  // Classic diamond where a greedy path must be rerouted.
  MaxFlow f(4);
  f.addEdge(0, 1, 1);
  f.addEdge(0, 2, 1);
  f.addEdge(1, 2, 1);
  f.addEdge(1, 3, 1);
  f.addEdge(2, 3, 1);
  EXPECT_EQ(f.solve(0, 3), 2);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.addEdge(0, 1, 10);
  f.addEdge(2, 3, 10);
  EXPECT_EQ(f.solve(0, 3), 0);
}

TEST(MaxFlow, HugeCapacities) {
  const Count huge = Count{1} << 60;
  MaxFlow f(3);
  f.addEdge(0, 1, huge);
  f.addEdge(1, 2, huge);
  f.addEdge(0, 2, huge);
  EXPECT_EQ(f.solve(0, 2), 2 * huge);
}

TEST(MaxFlow, ZeroCapacityEdgeIgnored) {
  MaxFlow f(2);
  f.addEdge(0, 1, 0);
  EXPECT_EQ(f.solve(0, 1), 0);
}

TEST(MaxFlow, BipartiteAssignment) {
  // 2 jobs x 2 machines, each with unit capacity -- perfect matching.
  // Nodes: 0 = source, 1-2 jobs, 3-4 machines, 5 = sink.
  MaxFlow f(6);
  f.addEdge(0, 1, 1);
  f.addEdge(0, 2, 1);
  f.addEdge(1, 3, 1);
  f.addEdge(2, 3, 1);
  f.addEdge(2, 4, 1);
  f.addEdge(3, 5, 1);
  f.addEdge(4, 5, 1);
  EXPECT_EQ(f.solve(0, 5), 2);
}

}  // namespace
}  // namespace relb::re
