// Property-based tests: randomized problems cross-check the flow-based
// primitives against brute-force enumeration, and the strength machinery
// against its defining property.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "re/diagram.hpp"
#include "re/problem.hpp"

namespace relb::re {
namespace {

struct RandomCase {
  int alphabetSize;
  Count degree;
  unsigned seed;
};

class RandomProblemTest : public ::testing::TestWithParam<RandomCase> {};

Configuration randomConfiguration(std::mt19937& rng, int alphabetSize,
                                  Count degree) {
  std::uniform_int_distribution<int> setDist(
      1, (1 << alphabetSize) - 1);
  std::vector<Group> groups;
  Count remaining = degree;
  while (remaining > 0) {
    std::uniform_int_distribution<Count> countDist(1, remaining);
    const Count c = countDist(rng);
    groups.push_back({LabelSet(static_cast<std::uint32_t>(setDist(rng))), c});
    remaining -= c;
  }
  return Configuration(std::move(groups));
}

Constraint randomConstraint(std::mt19937& rng, int alphabetSize, Count degree,
                            int numConfigs) {
  Constraint out(degree, {});
  for (int i = 0; i < numConfigs; ++i) {
    out.add(randomConfiguration(rng, alphabetSize, degree));
  }
  return out;
}

TEST_P(RandomProblemTest, MembershipAgreesWithEnumeration) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed);
  const auto c = randomConfiguration(rng, param.alphabetSize, param.degree);
  std::set<Word> enumerated;
  c.forEachWord(param.alphabetSize,
                [&](const Word& w) { enumerated.insert(w); });
  // Walk all words of the right degree.
  std::vector<Count> w(static_cast<std::size_t>(param.alphabetSize), 0);
  std::function<void(int, Count)> walk = [&](int idx, Count left) {
    if (idx + 1 == param.alphabetSize) {
      w[static_cast<std::size_t>(idx)] = left;
      EXPECT_EQ(c.matchesWord(w), enumerated.contains(w));
      return;
    }
    for (Count take = 0; take <= left; ++take) {
      w[static_cast<std::size_t>(idx)] = take;
      walk(idx + 1, left - take);
    }
  };
  walk(0, param.degree);
}

TEST_P(RandomProblemTest, IntersectsAgreesWithEnumeration) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 1000);
  const auto c1 = randomConfiguration(rng, param.alphabetSize, param.degree);
  const auto c2 = randomConfiguration(rng, param.alphabetSize, param.degree);
  bool shared = false;
  c1.forEachWord(param.alphabetSize, [&](const Word& w) {
    if (!shared && c2.matchesWord(w)) shared = true;
  });
  EXPECT_EQ(c1.intersects(c2), shared);
}

TEST_P(RandomProblemTest, RelaxationImpliesInclusion) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 2000);
  const auto c1 = randomConfiguration(rng, param.alphabetSize, param.degree);
  const auto c2 = randomConfiguration(rng, param.alphabetSize, param.degree);
  if (c1.relaxesTo(c2)) {
    c1.forEachWord(param.alphabetSize, [&](const Word& w) {
      EXPECT_TRUE(c2.matchesWord(w));
    });
  }
}

TEST_P(RandomProblemTest, ContainsAllWordsOfIsExact) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 3000);
  const auto constraint =
      randomConstraint(rng, param.alphabetSize, param.degree, 3);
  const auto probe = randomConfiguration(rng, param.alphabetSize, param.degree);
  bool expected = true;
  probe.forEachWord(param.alphabetSize, [&](const Word& w) {
    if (expected && !constraint.containsWord(w)) expected = false;
  });
  EXPECT_EQ(constraint.containsAllWordsOf(probe, param.alphabetSize), expected);
}

TEST_P(RandomProblemTest, StrengthSatisfiesDefiningProperty) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 4000);
  const auto constraint =
      randomConstraint(rng, param.alphabetSize, param.degree, 2);
  const auto rel = computeStrength(constraint, param.alphabetSize);
  rel.checkPreorder();
  const auto words = constraint.enumerateWords(param.alphabetSize);
  const std::set<Word> wordSet(words.begin(), words.end());
  for (int a = 0; a < param.alphabetSize; ++a) {
    for (int b = 0; b < param.alphabetSize; ++b) {
      if (a == b) continue;
      bool expected = true;
      for (const Word& w : words) {
        if (w[static_cast<std::size_t>(b)] == 0) continue;
        Word r = w;
        --r[static_cast<std::size_t>(b)];
        ++r[static_cast<std::size_t>(a)];
        if (!wordSet.contains(r)) {
          expected = false;
          break;
        }
      }
      EXPECT_EQ(
          rel.atLeastAsStrong(static_cast<Label>(a), static_cast<Label>(b)),
          expected);
    }
  }
}

TEST_P(RandomProblemTest, ScalableStrengthAgreesWithExactWhenDecided) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 5000);
  const auto constraint =
      randomConstraint(rng, param.alphabetSize, param.degree, 2);
  const auto exact = computeStrength(constraint, param.alphabetSize);
  for (int a = 0; a < param.alphabetSize; ++a) {
    for (int b = 0; b < param.alphabetSize; ++b) {
      if (a == b) continue;
      const auto scalable = atLeastAsStrongScalable(
          constraint, param.alphabetSize, static_cast<Label>(a),
          static_cast<Label>(b));
      if (scalable.has_value()) {
        EXPECT_EQ(*scalable, exact.atLeastAsStrong(static_cast<Label>(a),
                                                   static_cast<Label>(b)))
            << "labels " << a << "," << b;
      }
    }
  }
}

TEST_P(RandomProblemTest, CountWordsUpperBoundIsSound) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 7000);
  const auto c = randomConfiguration(rng, param.alphabetSize, param.degree);
  const std::size_t exact = c.countWords(param.alphabetSize, 1'000'000);
  EXPECT_GE(c.countWordsUpperBound(1'000'000), exact);
  // Saturation respects the cap.
  EXPECT_LE(c.countWordsUpperBound(10), 11u);
}

TEST_P(RandomProblemTest, RightClosedEnumerationMatchesFilter) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 6000);
  const auto constraint =
      randomConstraint(rng, param.alphabetSize, param.degree, 2);
  const auto rel = computeStrength(constraint, param.alphabetSize);
  const auto universe = LabelSet::full(param.alphabetSize);
  const auto sets = rel.allRightClosedSets(universe);
  std::set<LabelSet> fromEnum(sets.begin(), sets.end());
  std::set<LabelSet> fromFilter;
  for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << param.alphabetSize);
       ++mask) {
    const LabelSet s(mask);
    if (rel.isRightClosed(s)) fromFilter.insert(s);
  }
  EXPECT_EQ(fromEnum, fromFilter);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProblemTest,
    ::testing::Values(RandomCase{2, 3, 1}, RandomCase{2, 5, 2},
                      RandomCase{3, 3, 3}, RandomCase{3, 4, 4},
                      RandomCase{3, 6, 5}, RandomCase{4, 3, 6},
                      RandomCase{4, 4, 7}, RandomCase{4, 5, 8},
                      RandomCase{5, 3, 9}, RandomCase{5, 4, 10},
                      RandomCase{4, 6, 11}, RandomCase{3, 8, 12}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "n" + std::to_string(info.param.alphabetSize) + "d" +
             std::to_string(info.param.degree) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace relb::re
