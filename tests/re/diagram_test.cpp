#include "re/diagram.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "re/problem.hpp"

namespace relb::re {
namespace {

// Figure 1: in the MIS edge constraint, O is stronger than P and M is
// unrelated to both.
TEST(Diagram, MisEdgeDiagramMatchesFigure1) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  rel.checkPreorder();
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_TRUE(rel.strictlyStronger(o, pp));
  EXPECT_FALSE(rel.atLeastAsStrong(pp, o));
  EXPECT_FALSE(rel.atLeastAsStrong(m, pp));
  EXPECT_FALSE(rel.atLeastAsStrong(pp, m));
  EXPECT_FALSE(rel.atLeastAsStrong(m, o));
  EXPECT_FALSE(rel.atLeastAsStrong(o, m));
  const auto edges = rel.diagramEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], std::make_pair(pp, o));
}

TEST(Diagram, MisRightClosedSetsMatchObservation4Universe) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto sets = rel.allRightClosedSets(p.alphabet.all());
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  // Right-closed: every set containing P must contain O.
  for (const LabelSet s : sets) {
    if (s.contains(pp)) {
      EXPECT_TRUE(s.contains(o));
    }
  }
  // {M}, {O}, {MO}, {PO}, {MPO} are right-closed; {P}, {MP} are not.
  EXPECT_EQ(sets.size(), 5u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), LabelSet{m}), sets.end());
  EXPECT_EQ(std::find(sets.begin(), sets.end(), LabelSet{pp}), sets.end());
}

TEST(Diagram, RightClosureAddsStrongerLabels) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_EQ(rel.rightClosure(LabelSet{pp}), (LabelSet{pp, o}));
  EXPECT_FALSE(rel.isRightClosed(LabelSet{pp}));
  EXPECT_TRUE(rel.isRightClosed(LabelSet{pp, o}));
}

TEST(Diagram, NodeStrengthMis) {
  // W.r.t. the MIS node constraint {M^3, PO^2}: replacing O by O keeps, but
  // no distinct pair is related (M^3 breaks M-replacements, P count breaks
  // P/O swaps).
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.node, p.alphabet.size());
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(rel.atLeastAsStrong(static_cast<Label>(a),
                                       static_cast<Label>(b)))
          << a << " vs " << b;
    }
  }
}

TEST(Diagram, ScalableAgreesWithExactOnMis) {
  const auto p = misProblem(4);
  for (const Constraint* c : {&p.edge, &p.node}) {
    const auto exact = computeStrength(*c, p.alphabet.size());
    const auto scalable = computeStrengthScalable(*c, p.alphabet.size());
    EXPECT_EQ(exact, scalable);
  }
}

TEST(Diagram, ScalableHandlesHugeDelta) {
  const Count delta = Count{1} << 25;
  const auto p = misProblem(delta);
  // The node constraint's language is astronomically large, but the scalable
  // relation still resolves every pair for this structure.
  const auto rel = computeStrengthScalable(p.node, p.alphabet.size());
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(rel.atLeastAsStrong(static_cast<Label>(a),
                                       static_cast<Label>(b)));
    }
  }
  const auto edgeRel = computeStrengthScalable(p.edge, p.alphabet.size());
  EXPECT_TRUE(edgeRel.strictlyStronger(p.alphabet.at("O"), p.alphabet.at("P")));
}

TEST(Diagram, SinklessOrientationHasNoEdgeRelations) {
  const auto p = sinklessOrientationProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  EXPECT_TRUE(rel.diagramEdges().empty());
}

TEST(Diagram, DotOutputWellFormed) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto dot = rel.toDot(p.alphabet, "mis");
  EXPECT_NE(dot.find("digraph mis {"), std::string::npos);
  EXPECT_NE(dot.find("\"P\" -> \"O\""), std::string::npos);
}

TEST(Diagram, RenderDiagramReadable) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  EXPECT_EQ(rel.renderDiagram(p.alphabet), "P -> O\n");
}

TEST(Diagram, AllRightClosedSetsUniverseGuard) {
  StrengthRelation rel(21);
  EXPECT_THROW(rel.allRightClosedSets(LabelSet::full(21)), Error);
}

// -- degenerate and extremal inputs ----------------------------------------

TEST(Diagram, EmptyConstraintMakesEveryPairEquivalent) {
  // With no words in the language, "every word containing B stays in L
  // after the swap" holds vacuously: the preorder is complete, its strict
  // part empty, so the diagram has no edges at all.
  const Constraint empty(2, {});
  const auto rel = computeStrength(empty, 3);
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(rel.atLeastAsStrong(static_cast<Label>(a),
                                      static_cast<Label>(b)));
    }
  }
  EXPECT_TRUE(rel.diagramEdges().empty());
  // Completeness means only the full set (and nothing smaller) survives
  // right closure.
  const auto sets = rel.allRightClosedSets(LabelSet::full(3));
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], LabelSet::full(3));
}

TEST(Diagram, SingleLabelAlphabetIsTrivial) {
  const auto p = Problem::parse("A A A\n", "A A\n");
  for (const Constraint* c : {&p.node, &p.edge}) {
    const auto rel = computeStrength(*c, 1);
    rel.checkPreorder();
    EXPECT_TRUE(rel.atLeastAsStrong(0, 0));
    EXPECT_FALSE(rel.strictlyStronger(0, 0));
    EXPECT_TRUE(rel.diagramEdges().empty());
    EXPECT_EQ(rel.rightClosure(LabelSet{0}), LabelSet{0});
    const auto sets = rel.allRightClosedSets(LabelSet::full(1));
    ASSERT_EQ(sets.size(), 1u);
  }
  EXPECT_EQ(computeStrength(p.edge, 1), computeStrengthScalable(p.edge, 1));
}

TEST(Diagram, AllWordsConstraintGivesCompletePreorder) {
  // L = Sigma^2: every swap stays inside the language, so all labels are
  // equivalent -- a complete preorder whose diagram is empty, this time
  // with a non-empty language.
  const auto p = Problem::parse("A B C\n", "[ABC] [ABC]\n");
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(rel.atLeastAsStrong(static_cast<Label>(a),
                                      static_cast<Label>(b)));
    }
  }
  EXPECT_TRUE(rel.diagramEdges().empty());
  EXPECT_EQ(rel, computeStrengthScalable(p.edge, p.alphabet.size()));
}

TEST(Diagram, TotalOrderChainFromConstraintLanguage) {
  // L = {AC, BC, CC, BB} puts the labels in a strict chain A < B < C
  // (e.g. A >= B fails because BB -> AB leaves the language).  The computed
  // diagram must be the transitively reduced chain.
  const auto p = Problem::parse("A C\nB C\nC C\nB B\n",
                                "A C\nB C\nC C\nB B\n");
  const auto a = p.alphabet.at("A");
  const auto b = p.alphabet.at("B");
  const auto c = p.alphabet.at("C");
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  rel.checkPreorder();
  EXPECT_TRUE(rel.strictlyStronger(b, a));
  EXPECT_TRUE(rel.strictlyStronger(c, b));
  EXPECT_TRUE(rel.strictlyStronger(c, a));
  const auto edges = rel.diagramEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(a, b));
  EXPECT_EQ(edges[1], std::make_pair(b, c));
  // Right-closed sets of a 3-chain: the three upward closures.
  const auto sets = rel.allRightClosedSets(p.alphabet.all());
  EXPECT_EQ(sets.size(), 3u);
  EXPECT_EQ(rel.rightClosure(LabelSet{a}), p.alphabet.all());
  EXPECT_EQ(rel, computeStrengthScalable(p.edge, p.alphabet.size()));
}

TEST(Diagram, TransitiveReductionDropsImpliedEdges) {
  // Chain A < B < C: the diagram must not contain A -> C.
  StrengthRelation rel(3);
  rel.set(1, 0, true);
  rel.set(2, 0, true);
  rel.set(2, 1, true);
  rel.checkPreorder();
  const auto edges = rel.diagramEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(Label{0}, Label{1}));
  EXPECT_EQ(edges[1], std::make_pair(Label{1}, Label{2}));
}

}  // namespace
}  // namespace relb::re
