#include "re/diagram.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "re/problem.hpp"

namespace relb::re {
namespace {

// Figure 1: in the MIS edge constraint, O is stronger than P and M is
// unrelated to both.
TEST(Diagram, MisEdgeDiagramMatchesFigure1) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  rel.checkPreorder();
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_TRUE(rel.strictlyStronger(o, pp));
  EXPECT_FALSE(rel.atLeastAsStrong(pp, o));
  EXPECT_FALSE(rel.atLeastAsStrong(m, pp));
  EXPECT_FALSE(rel.atLeastAsStrong(pp, m));
  EXPECT_FALSE(rel.atLeastAsStrong(m, o));
  EXPECT_FALSE(rel.atLeastAsStrong(o, m));
  const auto edges = rel.diagramEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], std::make_pair(pp, o));
}

TEST(Diagram, MisRightClosedSetsMatchObservation4Universe) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto sets = rel.allRightClosedSets(p.alphabet.all());
  const auto m = p.alphabet.at("M");
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  // Right-closed: every set containing P must contain O.
  for (const LabelSet s : sets) {
    if (s.contains(pp)) {
      EXPECT_TRUE(s.contains(o));
    }
  }
  // {M}, {O}, {MO}, {PO}, {MPO} are right-closed; {P}, {MP} are not.
  EXPECT_EQ(sets.size(), 5u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), LabelSet{m}), sets.end());
  EXPECT_EQ(std::find(sets.begin(), sets.end(), LabelSet{pp}), sets.end());
}

TEST(Diagram, RightClosureAddsStrongerLabels) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto pp = p.alphabet.at("P");
  const auto o = p.alphabet.at("O");
  EXPECT_EQ(rel.rightClosure(LabelSet{pp}), (LabelSet{pp, o}));
  EXPECT_FALSE(rel.isRightClosed(LabelSet{pp}));
  EXPECT_TRUE(rel.isRightClosed(LabelSet{pp, o}));
}

TEST(Diagram, NodeStrengthMis) {
  // W.r.t. the MIS node constraint {M^3, PO^2}: replacing O by O keeps, but
  // no distinct pair is related (M^3 breaks M-replacements, P count breaks
  // P/O swaps).
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.node, p.alphabet.size());
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(rel.atLeastAsStrong(static_cast<Label>(a),
                                       static_cast<Label>(b)))
          << a << " vs " << b;
    }
  }
}

TEST(Diagram, ScalableAgreesWithExactOnMis) {
  const auto p = misProblem(4);
  for (const Constraint* c : {&p.edge, &p.node}) {
    const auto exact = computeStrength(*c, p.alphabet.size());
    const auto scalable = computeStrengthScalable(*c, p.alphabet.size());
    EXPECT_EQ(exact, scalable);
  }
}

TEST(Diagram, ScalableHandlesHugeDelta) {
  const Count delta = Count{1} << 25;
  const auto p = misProblem(delta);
  // The node constraint's language is astronomically large, but the scalable
  // relation still resolves every pair for this structure.
  const auto rel = computeStrengthScalable(p.node, p.alphabet.size());
  rel.checkPreorder();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(rel.atLeastAsStrong(static_cast<Label>(a),
                                       static_cast<Label>(b)));
    }
  }
  const auto edgeRel = computeStrengthScalable(p.edge, p.alphabet.size());
  EXPECT_TRUE(edgeRel.strictlyStronger(p.alphabet.at("O"), p.alphabet.at("P")));
}

TEST(Diagram, SinklessOrientationHasNoEdgeRelations) {
  const auto p = sinklessOrientationProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  EXPECT_TRUE(rel.diagramEdges().empty());
}

TEST(Diagram, DotOutputWellFormed) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  const auto dot = rel.toDot(p.alphabet, "mis");
  EXPECT_NE(dot.find("digraph mis {"), std::string::npos);
  EXPECT_NE(dot.find("\"P\" -> \"O\""), std::string::npos);
}

TEST(Diagram, RenderDiagramReadable) {
  const auto p = misProblem(3);
  const auto rel = computeStrength(p.edge, p.alphabet.size());
  EXPECT_EQ(rel.renderDiagram(p.alphabet), "P -> O\n");
}

TEST(Diagram, AllRightClosedSetsUniverseGuard) {
  StrengthRelation rel(21);
  EXPECT_THROW(rel.allRightClosedSets(LabelSet::full(21)), Error);
}

TEST(Diagram, TransitiveReductionDropsImpliedEdges) {
  // Chain A < B < C: the diagram must not contain A -> C.
  StrengthRelation rel(3);
  rel.set(1, 0, true);
  rel.set(2, 0, true);
  rel.set(2, 1, true);
  rel.checkPreorder();
  const auto edges = rel.diagramEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(Label{0}, Label{1}));
  EXPECT_EQ(edges[1], std::make_pair(Label{1}, Label{2}));
}

}  // namespace
}  // namespace relb::re
