// The EngineCore / EngineSession split (engine.hpp): many sessions sharing
// one core from many threads produce results bit-identical to a serial
// single-session run, per-session statistics and scope counters attribute
// work to the session that asked for it, and chain certificates built
// through concurrent shared-core sessions serialize to the same bytes as a
// serial build.  This suite runs under TSan in CI (the concurrency job) --
// keep every cross-thread interaction data-race-free by construction.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/family.hpp"
#include "core/sequence.hpp"
#include "gen/random_problem.hpp"
#include "io/certificate.hpp"
#include "obs/scope.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"

namespace relb::re {
namespace {

constexpr int kSessions = 8;

std::vector<Problem> randomTestbed(std::size_t count) {
  std::mt19937 rng(20260807);
  gen::RandomProblemOptions options;
  options.maxAlphabet = 4;
  options.maxDelta = 3;
  std::vector<Problem> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(gen::randomProblem(rng, options));
  }
  return out;
}

void expectProblemsBitIdentical(const Problem& a, const Problem& b,
                                const std::string& what) {
  EXPECT_EQ(a.alphabet.names(), b.alphabet.names()) << what;
  EXPECT_EQ(a.node, b.node) << what;
  EXPECT_EQ(a.edge, b.edge) << what;
}

TEST(EngineSession, ConcurrentSessionsMatchSerialBitForBit) {
  const std::vector<Problem> problems = randomTestbed(12);

  // Serial reference: one standalone session, cold core.
  std::vector<StepResult> serialR;
  std::vector<bool> serialZero;
  {
    EngineSession serial;
    for (const Problem& p : problems) {
      serialR.push_back(serial.applyR(p));
      serialZero.push_back(
          serial.zeroRoundSolvable(p, ZeroRoundMode::kSymmetricPorts));
    }
  }

  // kSessions plain std::threads, each with its own session and scope over
  // ONE shared core, all hammering the same problems concurrently.
  auto core = std::make_shared<EngineCore>();
  std::vector<std::vector<StepResult>> gotR(kSessions);
  std::vector<std::vector<bool>> gotZero(kSessions);
  std::vector<std::size_t> lookups(kSessions);
  {
    std::vector<obs::SessionScope> scopes(kSessions);
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        EngineSession session(core, PassOptions{}, &scopes[s]);
        for (const Problem& p : problems) {
          gotR[s].push_back(session.applyR(p));
          gotZero[s].push_back(
              session.zeroRoundSolvable(p, ZeroRoundMode::kSymmetricPorts));
        }
        const CacheStats stats = session.stats();
        // Every lookup this session made is attributed to it, whoever
        // computed the entry.
        EXPECT_EQ(stats.stepHits + stats.stepMisses, problems.size());
        EXPECT_EQ(stats.zeroRoundHits + stats.zeroRoundMisses,
                  problems.size());
        // The scope's registry saw the same traffic.
        const obs::Registry::Snapshot snap = scopes[s].snapshot();
        std::uint64_t memo = 0, zero = 0;
        for (const auto& [name, value] : snap.counters) {
          if (name == "engine.memo.hit" || name == "engine.memo.miss") {
            memo += value;
          }
          if (name == "engine.zero_round.hit" ||
              name == "engine.zero_round.miss") {
            zero += value;
          }
        }
        EXPECT_EQ(memo, problems.size());
        EXPECT_EQ(zero, problems.size());
        lookups[s] = stats.stepHits + stats.stepMisses;
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(gotR[s].size(), problems.size()) << "session " << s;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const std::string what =
          "session " + std::to_string(s) + " problem " + std::to_string(i);
      expectProblemsBitIdentical(serialR[i].problem, gotR[s][i].problem,
                                 what);
      EXPECT_EQ(serialR[i].meaning, gotR[s][i].meaning) << what;
      EXPECT_EQ(serialZero[i], gotZero[s][i]) << what;
    }
  }

  // The core aggregate is the sum of the sessions' attributed views, and
  // every distinct problem was computed at most once per operator (misses
  // <= problems; two sessions may race to compute the same key, so exact
  // equality is not guaranteed -- but lookups must balance).
  const CacheStats total = core->stats();
  std::size_t sessionLookups = 0;
  for (const std::size_t n : lookups) sessionLookups += n;
  EXPECT_EQ(total.stepHits + total.stepMisses, sessionLookups);
}

TEST(EngineSession, StatsAttributeToTheSessionThatAsked) {
  auto core = std::make_shared<EngineCore>();
  const Problem p = core::familyProblem(4, 2, 1);

  EngineSession first(core);
  (void)first.speedupStep(p);
  const CacheStats firstStats = first.stats();
  EXPECT_EQ(firstStats.stepMisses, 2u);  // applyR + applyRbar
  EXPECT_EQ(firstStats.stepHits, 0u);

  EngineSession second(core);
  (void)second.speedupStep(p);
  const CacheStats secondStats = second.stats();
  EXPECT_EQ(secondStats.stepHits, 2u);  // served from the first's work
  EXPECT_EQ(secondStats.stepMisses, 0u);
  // The first session's view is untouched by the second's traffic.
  EXPECT_EQ(first.stats().stepHits, 0u);

  const CacheStats total = core->stats();
  EXPECT_EQ(total.stepHits, 2u);
  EXPECT_EQ(total.stepMisses, 2u);

  // Session-local reset leaves the aggregate alone.
  second.resetStats();
  EXPECT_EQ(second.stats().stepHits, 0u);
  EXPECT_EQ(core->stats().stepHits, 2u);
}

TEST(EngineSession, ConcurrentChainCertificatesMatchSerialBytes) {
  const core::Chain chain = core::exactChain(24, 1);

  const std::string serialBytes = [&] {
    EngineSession serial;
    return io::certificateToJson(
               core::buildChainCertificate(chain, &serial, 1))
        .dump();
  }();

  auto shared = std::make_shared<EngineCore>();
  std::vector<std::string> bytes(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      EngineSession session(shared, PassOptions{});
      bytes[s] = io::certificateToJson(
                     core::buildChainCertificate(chain, &session, 1))
                     .dump();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(bytes[s], serialBytes) << "session " << s;
  }
}

TEST(EngineSession, LegacyAliasStillStandsAlone) {
  // EngineContext must keep meaning "private core, global observability":
  // two standalone contexts share nothing.
  const Problem p = core::familyProblem(4, 2, 1);
  EngineContext a;
  EngineContext b;
  (void)a.speedupStep(p);
  (void)b.speedupStep(p);
  EXPECT_EQ(a.stats().stepMisses, 2u);
  EXPECT_EQ(b.stats().stepMisses, 2u);  // no sharing happened
  EXPECT_EQ(b.stats().stepHits, 0u);
}

}  // namespace
}  // namespace relb::re
