#include "re/configuration.hpp"

#include <gtest/gtest.h>

#include <set>

namespace relb::re {
namespace {

Configuration cfg(std::vector<Group> groups) {
  return Configuration(std::move(groups));
}

TEST(Configuration, NormalizationMergesAndSorts) {
  const auto c = cfg({{LabelSet{1}, 2}, {LabelSet{0}, 1}, {LabelSet{1}, 3}});
  ASSERT_EQ(c.groups().size(), 2u);
  EXPECT_EQ(c.groups()[0].set, LabelSet{0});
  EXPECT_EQ(c.groups()[0].count, 1);
  EXPECT_EQ(c.groups()[1].set, LabelSet{1});
  EXPECT_EQ(c.groups()[1].count, 5);
  EXPECT_EQ(c.degree(), 6);
}

TEST(Configuration, RejectsBadGroups) {
  EXPECT_THROW(cfg({{LabelSet{}, 1}}), Error);
  EXPECT_THROW(cfg({{LabelSet{0}, -1}}), Error);
}

TEST(Configuration, ZeroCountGroupsDropped) {
  const auto c = cfg({{LabelSet{0}, 0}, {LabelSet{1}, 2}});
  EXPECT_EQ(c.groups().size(), 1u);
}

TEST(Configuration, Support) {
  const auto c = cfg({{LabelSet{0, 2}, 1}, {LabelSet{1}, 1}});
  EXPECT_EQ(c.support(), (LabelSet{0, 1, 2}));
}

TEST(Configuration, MatchesWordSimple) {
  // [AB]^2 [C]^1 over alphabet {A=0, B=1, C=2}.
  const auto c = cfg({{LabelSet{0, 1}, 2}, {LabelSet{2}, 1}});
  EXPECT_TRUE(c.matchesWord(wordFromLabels({0, 0, 2}, 3)));
  EXPECT_TRUE(c.matchesWord(wordFromLabels({0, 1, 2}, 3)));
  EXPECT_TRUE(c.matchesWord(wordFromLabels({1, 1, 2}, 3)));
  EXPECT_FALSE(c.matchesWord(wordFromLabels({0, 0, 0}, 3)));
  EXPECT_FALSE(c.matchesWord(wordFromLabels({2, 2, 0}, 3)));
  EXPECT_FALSE(c.matchesWord(wordFromLabels({0, 2}, 3)));  // wrong degree
}

TEST(Configuration, MatchesWordNeedsCarefulAssignment) {
  // [AB] [BC] over {A,B,C}: word {A, B} must put A in group 1, B in group 2.
  const auto c = cfg({{LabelSet{0, 1}, 1}, {LabelSet{1, 2}, 1}});
  EXPECT_TRUE(c.matchesWord(wordFromLabels({0, 1}, 3)));
  EXPECT_TRUE(c.matchesWord(wordFromLabels({0, 2}, 3)));
  EXPECT_TRUE(c.matchesWord(wordFromLabels({1, 1}, 3)));
  EXPECT_FALSE(c.matchesWord(wordFromLabels({0, 0}, 3)));
  EXPECT_FALSE(c.matchesWord(wordFromLabels({2, 2}, 3)));
}

TEST(Configuration, MatchesWordHugeExponents) {
  const Count huge = Count{1} << 40;
  // A^huge [AB]^huge.
  const auto c = cfg({{LabelSet{0}, huge}, {LabelSet{0, 1}, huge}});
  Word w(2, 0);
  w[0] = huge;
  w[1] = huge;
  EXPECT_TRUE(c.matchesWord(w));
  w[0] = huge - 1;
  w[1] = huge + 1;
  EXPECT_FALSE(c.matchesWord(w));
  w[0] = 2 * huge;
  w[1] = 0;
  EXPECT_TRUE(c.matchesWord(w));
}

TEST(Configuration, MatchesWordAgreesWithEnumeration) {
  // Cross-check flow-based membership against explicit enumeration.
  const auto c = cfg({{LabelSet{0, 1}, 2}, {LabelSet{1, 2}, 1}, {LabelSet{2}, 1}});
  std::set<Word> enumerated;
  c.forEachWord(3, [&](const Word& w) { enumerated.insert(w); });
  // Walk all words of degree 4 over a 3-letter alphabet.
  for (Count a = 0; a <= 4; ++a) {
    for (Count b = 0; a + b <= 4; ++b) {
      const Count cc = 4 - a - b;
      const Word w{a, b, cc};
      EXPECT_EQ(c.matchesWord(w), enumerated.contains(w))
          << "word " << a << "," << b << "," << cc;
    }
  }
}

TEST(Configuration, IntersectsBasic) {
  const auto c1 = cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}});   // AB
  const auto c2 = cfg({{LabelSet{0, 1}, 2}});                  // [AB]^2
  const auto c3 = cfg({{LabelSet{2}, 2}});                     // CC
  EXPECT_TRUE(c1.intersects(c2));
  EXPECT_TRUE(c2.intersects(c1));
  EXPECT_FALSE(c1.intersects(c3));
  EXPECT_TRUE(c3.intersects(c3));
}

TEST(Configuration, IntersectsRequiresSameDegree) {
  const auto c1 = cfg({{LabelSet{0}, 1}});
  const auto c2 = cfg({{LabelSet{0}, 2}});
  EXPECT_FALSE(c1.intersects(c2));
}

TEST(Configuration, IntersectsNeedsFlowNotJustSupport) {
  // [AB][AB] vs [A][B]: intersection = {AB}, non-empty.
  const auto c1 = cfg({{LabelSet{0, 1}, 2}});
  const auto c2 = cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}});
  EXPECT_TRUE(c1.intersects(c2));
  // A^2 vs [AB][B]: supports intersect but no common word.
  const auto c3 = cfg({{LabelSet{0}, 2}});
  const auto c4 = cfg({{LabelSet{0, 1}, 1}, {LabelSet{1}, 1}});
  EXPECT_FALSE(c3.intersects(c4));
}

TEST(Configuration, IntersectsHugeExponents) {
  const Count huge = Count{1} << 40;
  const auto c1 = cfg({{LabelSet{0}, huge}, {LabelSet{1}, huge}});
  const auto c2 = cfg({{LabelSet{0, 1}, 2 * huge}});
  EXPECT_TRUE(c1.intersects(c2));
  const auto c3 = cfg({{LabelSet{2}, 2 * huge}});
  EXPECT_FALSE(c1.intersects(c3));
}

TEST(Configuration, RelaxesTo) {
  // A B relaxes to [AB] [AB] but not vice versa.
  const auto narrow = cfg({{LabelSet{0}, 1}, {LabelSet{1}, 1}});
  const auto wide = cfg({{LabelSet{0, 1}, 2}});
  EXPECT_TRUE(narrow.relaxesTo(wide));
  EXPECT_FALSE(wide.relaxesTo(narrow));
  EXPECT_TRUE(narrow.relaxesTo(narrow));
}

TEST(Configuration, RelaxesToNeedsMatching) {
  // [AB][C] relaxes to [ABC][ABC] and to [AB][C] but not to [AB][AB].
  const auto c = cfg({{LabelSet{0, 1}, 1}, {LabelSet{2}, 1}});
  EXPECT_TRUE(c.relaxesTo(cfg({{LabelSet{0, 1, 2}, 2}})));
  EXPECT_FALSE(c.relaxesTo(cfg({{LabelSet{0, 1}, 2}})));
}

TEST(Configuration, RelaxationImpliesLanguageInclusion) {
  const auto c = cfg({{LabelSet{0}, 2}, {LabelSet{1, 2}, 1}});
  const auto d = cfg({{LabelSet{0, 1}, 2}, {LabelSet{1, 2}, 1}});
  ASSERT_TRUE(c.relaxesTo(d));
  c.forEachWord(3, [&](const Word& w) { EXPECT_TRUE(d.matchesWord(w)); });
}

TEST(Configuration, ContainsAllWordsOfExactFallback) {
  // L({B}{AC}) = {BA, BC} is contained in L([AB][BC]) = {AB,AC,BB,BC}
  // even though no groupwise embedding exists.
  const auto inner = cfg({{LabelSet{1}, 1}, {LabelSet{0, 2}, 1}});
  const auto outer = cfg({{LabelSet{0, 1}, 1}, {LabelSet{1, 2}, 1}});
  EXPECT_FALSE(inner.relaxesTo(outer));
  EXPECT_TRUE(outer.containsAllWordsOf(inner));
  EXPECT_FALSE(inner.containsAllWordsOf(outer));
}

TEST(Configuration, ForEachWordDeduplicates) {
  // [AB][AB]: words AA, AB, BB -> exactly 3 distinct words.
  const auto c = cfg({{LabelSet{0, 1}, 2}});
  int count = 0;
  c.forEachWord(2, [&](const Word&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Configuration, ForEachWordLimitEnforced) {
  const auto c = cfg({{LabelSet{0, 1, 2}, 10}});
  EXPECT_THROW(c.forEachWord(3, [](const Word&) {}, 5), Error);
}

TEST(Configuration, CountWords) {
  const auto c = cfg({{LabelSet{0, 1}, 2}, {LabelSet{2}, 1}});
  EXPECT_EQ(c.countWords(3, 100), 3u);
}

TEST(Configuration, FromWordRoundTrip) {
  const Word w = wordFromLabels({0, 0, 2}, 3);
  const auto c = Configuration::fromWord(w);
  EXPECT_EQ(c.degree(), 3);
  EXPECT_TRUE(c.matchesWord(w));
  int count = 0;
  c.forEachWord(3, [&](const Word&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Configuration, RenderReadable) {
  Alphabet a({"M", "P", "O"});
  const auto c = cfg({{LabelSet{0}, 3}, {LabelSet{1, 2}, 1}});
  EXPECT_EQ(c.render(a), "M^3 [PO]");
}

}  // namespace
}  // namespace relb::re
