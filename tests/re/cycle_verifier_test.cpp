// Tests for the exact T-round cycle solver, culminating in an empirical
// machine-check of the speedup theorem (Theorem 3) on Delta = 2 problems:
//     cycleSolvable(Pi, T)  ==  cycleSolvable(Rbar(R(Pi)), T-1).
#include "re/cycle_verifier.hpp"

#include <gtest/gtest.h>

#include <random>

#include "re/encodings.hpp"
#include "re/re_step.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

TEST(CycleSolvable, ViewCounts) {
  EXPECT_EQ(cycleViewCount(0), 4);
  EXPECT_EQ(cycleViewCount(1), 64);
  EXPECT_EQ(cycleViewCount(2), 1024);
  EXPECT_THROW((void)cycleViewCount(4), Error);
}

TEST(CycleSolvable, TrivialProblem) {
  const auto p = Problem::parse("O^2\n", "O O\n");
  EXPECT_TRUE(cycleSolvable(p, 0));
  EXPECT_TRUE(cycleSolvable(p, 1));
}

TEST(CycleSolvable, EdgePortsAreVisibleAtRadiusZero) {
  // "Output Z on the edge where you are side 0, O otherwise": solvable in 0
  // rounds *because* edge ports are part of the input -- while the
  // port-agnostic adversarial analysis (which ignores edge sides) says no.
  const auto orient = Problem::parse("[ZO] [ZO]\n", "Z O\n");
  EXPECT_TRUE(cycleSolvable(orient, 0));
  EXPECT_FALSE(zeroRoundSolvableAdversarialPorts(orient));
}

TEST(CycleSolvable, GlobalProblemsUnsolvableAtSmallRadius) {
  // 2-coloring, 3-coloring (Theta(log* n)), MIS, maximal matching: none is
  // O(1) on cycles.
  for (const auto& p :
       {cColoringProblem(2, 2), cColoringProblem(2, 3), misProblem(2),
        maximalMatchingProblem(2), sinklessOrientationProblem(2)}) {
    EXPECT_FALSE(cycleSolvable(p, 0));
    EXPECT_FALSE(cycleSolvable(p, 1));
    EXPECT_FALSE(cycleSolvable(p, 2));
  }
}

TEST(CycleSolvable, RequiresDeltaTwo) {
  EXPECT_THROW((void)cycleSolvable(misProblem(3), 1), Error);
}

TEST(Theorem3, HoldsOnTheCatalog) {
  for (const auto& p :
       {cColoringProblem(2, 2), cColoringProblem(2, 3), misProblem(2),
        maximalMatchingProblem(2), sinklessOrientationProblem(2),
        Problem::parse("[ZO] [ZO]\n", "Z O\n")}) {
    const auto sped = speedupStep(p);
    EXPECT_EQ(cycleSolvable(p, 1), cycleSolvable(sped, 0));
    EXPECT_EQ(cycleSolvable(p, 2), cycleSolvable(sped, 1));
  }
}

// Random Delta = 2 problems; the speedup theorem must hold for every one.
Problem randomCycleProblem(std::mt19937& rng, int nLabels) {
  Problem p;
  for (int i = 0; i < nLabels; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << nLabels) - 1);
  std::bernoulli_distribution coin(0.45);
  Constraint node(2, {});
  const int cnt = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int i = 0; i < cnt; ++i) {
    node.add(Configuration(
        {{LabelSet(static_cast<std::uint32_t>(setDist(rng))), 1},
         {LabelSet(static_cast<std::uint32_t>(setDist(rng))), 1}}));
  }
  p.node = std::move(node);
  Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < nLabels; ++a) {
    for (int b = a; b < nLabels; ++b) {
      if (coin(rng)) {
        edge.add(Configuration({{LabelSet{static_cast<Label>(a)}, 1},
                                {LabelSet{static_cast<Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) edge.add(Configuration({{LabelSet{0}, 2}}));
  p.edge = std::move(edge);
  p.validate();
  return p;
}

class Theorem3Random : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem3Random, SpeedupMatchesBruteForceSolvability) {
  std::mt19937 rng(GetParam());
  const auto p = randomCycleProblem(rng, GetParam() % 2 ? 2 : 3);
  Problem sped;
  try {
    sped = speedupStep(p);
  } catch (const Error&) {
    GTEST_SKIP() << "speedup exceeded engine guards";
  }
  EXPECT_EQ(cycleSolvable(p, 1), cycleSolvable(sped, 0)) << p.render();
  EXPECT_EQ(cycleSolvable(p, 2), cycleSolvable(sped, 1)) << p.render();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3Random, ::testing::Range(1u, 41u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb::re
