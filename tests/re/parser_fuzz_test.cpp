// Robustness: the parser must reject malformed input with re::Error --
// never crash, hang, or accept garbage -- and must round-trip everything it
// accepts.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "re/problem.hpp"

namespace relb::re {
namespace {

TEST(ParserFuzz, RandomGarbageEitherParsesOrThrowsError) {
  const std::string charset = "MPOAX[]^ 0123456789\tabz()#;-";
  std::mt19937 rng(123);
  std::uniform_int_distribution<std::size_t> pick(0, charset.size() - 1);
  std::uniform_int_distribution<int> lenDist(0, 40);
  int parsed = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string nodeSpec, edgeSpec;
    for (int i = lenDist(rng); i > 0; --i) nodeSpec += charset[pick(rng)];
    for (int i = lenDist(rng); i > 0; --i) edgeSpec += charset[pick(rng)];
    try {
      const auto p = Problem::parse(nodeSpec, edgeSpec);
      p.validate();
      ++parsed;
      // Whatever parsed must render and re-parse to the same structure.
      const auto q = Problem::parse(p.node.render(p.alphabet),
                                    p.edge.render(p.alphabet));
      EXPECT_EQ(q.node.size(), p.node.size());
      EXPECT_EQ(q.edge.size(), p.edge.size());
    } catch (const Error&) {
      // expected for malformed input
    }
  }
  // A few random strings should actually parse (sanity that the fuzzer is
  // not rejecting everything trivially).
  EXPECT_GT(parsed, 0);
}

TEST(ParserFuzz, PathologicalInputs) {
  EXPECT_THROW(Problem::parse("[", "A A"), Error);
  EXPECT_THROW(Problem::parse("]", "A A"), Error);
  EXPECT_THROW(Problem::parse("[]", "A A"), Error);
  EXPECT_THROW(Problem::parse("A^", "A A"), Error);
  EXPECT_THROW(Problem::parse("A^^2", "A A"), Error);
  EXPECT_THROW(Problem::parse("A^99999999999999999999", "A A"), Error);
  EXPECT_THROW(Problem::parse("A", "A A A"), Error);   // edge degree 3
  EXPECT_THROW(Problem::parse("A\nA A", "A A"), Error);  // mixed degrees
  EXPECT_THROW(Problem::parse("^3", "A A"), Error);
  // Deep nesting is not part of the grammar.
  EXPECT_THROW(Problem::parse("[[A]]", "A A"), Error);
}

TEST(ParserFuzz, ManyLabelsOverflowGuard) {
  std::string nodeSpec;
  for (int i = 0; i < 40; ++i) {
    nodeSpec += "L" + std::to_string(i) + " ";
  }
  EXPECT_THROW(Problem::parse(nodeSpec, "L0 L0"), Error);
}

TEST(ParserFuzz, WhitespaceResilience) {
  const auto p = Problem::parse("  M^3 \r\n\n\t P  O^2  \n", "M [PO]\nO O");
  EXPECT_EQ(p.node.size(), 2u);
}

}  // namespace
}  // namespace relb::re
