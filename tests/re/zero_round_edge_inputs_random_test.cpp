// Random cross-validation: the closed-form 0-round analysis with edge-port
// inputs (maximal-pair characterization, any Delta) must agree with the
// brute-force T=0 solvers on cycles and 3-regular trees.
#include <gtest/gtest.h>

#include <random>

#include "re/cycle_verifier.hpp"
#include "re/tree_verifier.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

Problem randomProblem(std::mt19937& rng, int nLabels, Count delta) {
  Problem p;
  for (int i = 0; i < nLabels; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << nLabels) - 1);
  std::bernoulli_distribution coin(0.5);
  Constraint node(delta, {});
  const int cnt = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int i = 0; i < cnt; ++i) {
    std::vector<Group> groups;
    Count remaining = delta;
    while (remaining > 0) {
      const Count c = std::uniform_int_distribution<Count>(1, remaining)(rng);
      groups.push_back(
          {LabelSet(static_cast<std::uint32_t>(setDist(rng))), c});
      remaining -= c;
    }
    node.add(Configuration(std::move(groups)));
  }
  p.node = std::move(node);
  Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < nLabels; ++a) {
    for (int b = a; b < nLabels; ++b) {
      if (coin(rng)) {
        edge.add(Configuration({{LabelSet{static_cast<Label>(a)}, 1},
                                {LabelSet{static_cast<Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) edge.add(Configuration({{LabelSet{0}, 2}}));
  p.edge = std::move(edge);
  return p;
}

class EdgeInputsRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(EdgeInputsRandom, MatchesCycleBruteForce) {
  std::mt19937 rng(GetParam());
  const auto p = randomProblem(rng, 1 + static_cast<int>(GetParam() % 3) + 1,
                               2);
  EXPECT_EQ(zeroRoundSolvableWithEdgeInputs(p), cycleSolvable(p, 0))
      << p.render();
}

TEST_P(EdgeInputsRandom, MatchesTreeBruteForce) {
  std::mt19937 rng(GetParam() + 1000);
  const auto p = randomProblem(rng, 1 + static_cast<int>(GetParam() % 3) + 1,
                               3);
  EXPECT_EQ(zeroRoundSolvableWithEdgeInputs(p), treeSolvable3(p, 0))
      << p.render();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeInputsRandom, ::testing::Range(1u, 31u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb::re
