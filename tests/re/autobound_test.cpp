#include "re/autobound.hpp"

#include <gtest/gtest.h>

#include "re/encodings.hpp"
#include "re/problem.hpp"

namespace relb::re {
namespace {

TEST(IterateSpeedup, SinklessOrientationFindsFixedPoint) {
  const auto trace = iterateSpeedup(sinklessOrientationProblem(3));
  EXPECT_EQ(trace.reason, StopReason::kFixedPoint);
  ASSERT_TRUE(trace.fixedPointAt.has_value());
  EXPECT_LE(*trace.fixedPointAt, 2);
  // The certificate means Omega(log n): the fixed point itself is hard.
  EXPECT_EQ(trace.last.alphabet.size(), 2);
  EXPECT_NE(trace.describe().find("fixed point"), std::string::npos);
}

TEST(IterateSpeedup, TrivialProblemStopsImmediately) {
  const auto p = Problem::parse("O^3\n", "O O\n");
  const auto trace = iterateSpeedup(p);
  EXPECT_EQ(trace.reason, StopReason::kZeroRoundSolvable);
  EXPECT_EQ(trace.zeroRoundAfter, 0);
}

TEST(IterateSpeedup, MisHitsLabelBudget) {
  IterateOptions options;
  options.maxLabels = 12;
  options.maxSteps = 6;
  const auto trace = iterateSpeedup(misProblem(3), options);
  EXPECT_EQ(trace.reason, StopReason::kLabelBudget);
  // Label counts grow monotonically along the recorded trace.
  ASSERT_GE(trace.steps.size(), 3u);
  EXPECT_EQ(trace.steps[0].labels, 3);
  EXPECT_GT(trace.steps.back().labels, 12);
  EXPECT_NE(trace.describe().find("doubly exponential"), std::string::npos);
}

TEST(IterateSpeedup, StepLimitRespected) {
  IterateOptions options;
  options.maxSteps = 1;
  options.maxLabels = 100;  // don't stop for labels
  options.detectFixedPoint = false;
  const auto trace = iterateSpeedup(misProblem(3), options);
  EXPECT_EQ(trace.reason, StopReason::kStepLimit);
  EXPECT_EQ(trace.steps.size(), 2u);
}

TEST(IterateSpeedup, TwoColoringOfCycleIsHard) {
  // 2-coloring a cycle (Delta = 2) is a global problem; the iteration must
  // never report it 0-round solvable, and in fact it reaches a fixed point
  // (the classic Omega(n)-hard problems are fixed-point-like under
  // speedup; on cycles anything not o(log* n) shows up as non-trivial).
  const auto trace = iterateSpeedup(cColoringProblem(2, 2));
  EXPECT_NE(trace.reason, StopReason::kZeroRoundSolvable);
}

TEST(IterateSpeedup, ThreeColoringOfCycleBecomesSolvable) {
  // 3-coloring a cycle is O(log* n): a few speedup steps reach a 0-round
  // solvable problem only if log*-many are taken -- within a small budget
  // the iteration should NOT certify an upper bound, and labels stay
  // moderate.  (This documents that the engine distinguishes the log* regime
  // from the O(1) regime.)
  IterateOptions options;
  options.maxSteps = 3;
  options.maxLabels = 40;
  const auto trace = iterateSpeedup(cColoringProblem(2, 3), options);
  if (trace.reason == StopReason::kZeroRoundSolvable) {
    // Permitted only after at least one step (it is not 0-round solvable).
    EXPECT_GE(*trace.zeroRoundAfter, 1);
  }
}

TEST(IterateSpeedup, FamilyMemberSurvivesSteps) {
  // Pi_Delta(a,x) under the *raw* speedup (no edge-coloring trick): labels
  // grow, the engine eventually stops -- the observable that motivates the
  // paper's Lemma 9 construction.
  const auto p = Problem::parse("M^3\nA^2 X\nP O^2\n",
                                "M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\n"
                                "X [MPAOX]\n");
  IterateOptions options;
  options.maxSteps = 3;
  options.maxLabels = 10;
  const auto trace = iterateSpeedup(p, options);
  EXPECT_TRUE(trace.reason == StopReason::kLabelBudget ||
              trace.reason == StopReason::kEngineLimit ||
              trace.reason == StopReason::kStepLimit);
}

}  // namespace
}  // namespace relb::re
