// Determinism and equivalence of the parallel engine: applyR / applyRbar /
// speedupStep must produce bit-identical problems (alphabet names, node and
// edge constraints, meaning vectors) for every StepOptions::numThreads, on
// the paper's Pi_Delta(a, x) family and on randomized problems.  Explicit
// widths are honored beyond the hardware concurrency, so this test
// genuinely multithreads even on a single-core machine (and is the target
// of the TSan CI job).
#include <gtest/gtest.h>

#include <random>

#include "core/family.hpp"
#include "core/sequence.hpp"
#include "re/re_step.hpp"

namespace relb::re {
namespace {

constexpr int kWidths[] = {1, 2, 8};

StepOptions withThreads(int numThreads) {
  StepOptions options;
  options.numThreads = numThreads;
  return options;
}

void expectStepResultsEqual(const StepResult& serial,
                            const StepResult& parallel, int numThreads) {
  EXPECT_EQ(serial.problem.alphabet.names(),
            parallel.problem.alphabet.names())
      << "numThreads=" << numThreads;
  EXPECT_EQ(serial.problem.node, parallel.problem.node)
      << "numThreads=" << numThreads;
  EXPECT_EQ(serial.problem.edge, parallel.problem.edge)
      << "numThreads=" << numThreads;
  EXPECT_EQ(serial.meaning, parallel.meaning) << "numThreads=" << numThreads;
}

void checkAllWidthsAgree(const Problem& p) {
  const StepResult r1 = applyR(p, withThreads(1));
  const StepResult rbar1 = applyRbar(r1.problem, withThreads(1));
  const Problem sped1 = speedupStep(p, withThreads(1));
  for (const int threads : kWidths) {
    if (threads == 1) continue;
    expectStepResultsEqual(r1, applyR(p, withThreads(threads)), threads);
    expectStepResultsEqual(rbar1, applyRbar(r1.problem, withThreads(threads)),
                           threads);
    const Problem sped = speedupStep(p, withThreads(threads));
    EXPECT_EQ(sped1.alphabet.names(), sped.alphabet.names())
        << "numThreads=" << threads;
    EXPECT_EQ(sped1.node, sped.node) << "numThreads=" << threads;
    EXPECT_EQ(sped1.edge, sped.edge) << "numThreads=" << threads;
  }
}

TEST(ParallelStep, FamilyProblemsAgreeAcrossWidths) {
  for (const auto& [delta, a, x] :
       {std::tuple<Count, Count, Count>{3, 2, 0},
        {3, 3, 1},
        {4, 3, 1},
        {4, 4, 0},
        {5, 4, 1},
        {5, 5, 2}}) {
    SCOPED_TRACE("delta=" + std::to_string(delta) + " a=" + std::to_string(a) +
                 " x=" + std::to_string(x));
    checkAllWidthsAgree(core::familyProblem(delta, a, x));
  }
}

TEST(ParallelStep, MisProblemsAgreeAcrossWidths) {
  for (const Count delta : {Count{2}, Count{3}, Count{4}}) {
    SCOPED_TRACE("delta=" + std::to_string(delta));
    checkAllWidthsAgree(misProblem(delta));
  }
}

// Same generator shape as re_step_random_test.cpp (duplicated for
// independence).
Problem randomProblem(std::mt19937& rng, int alphabetSize, Count delta,
                      int nodeConfigs, double edgeDensity) {
  Problem p;
  for (int i = 0; i < alphabetSize; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << alphabetSize) - 1);
  Constraint node(delta, {});
  for (int i = 0; i < nodeConfigs; ++i) {
    std::vector<Group> groups;
    Count remaining = delta;
    while (remaining > 0) {
      std::uniform_int_distribution<Count> countDist(1, remaining);
      const Count c = countDist(rng);
      groups.push_back(
          {LabelSet(static_cast<std::uint32_t>(setDist(rng))), c});
      remaining -= c;
    }
    node.add(Configuration(std::move(groups)));
  }
  p.node = std::move(node);

  std::bernoulli_distribution coin(edgeDensity);
  Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < alphabetSize; ++a) {
    for (int b = a; b < alphabetSize; ++b) {
      if (coin(rng)) {
        edge.add(Configuration({{LabelSet{static_cast<Label>(a)}, 1},
                                {LabelSet{static_cast<Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) {
    edge.add(Configuration({{LabelSet{0}, 2}}));
  }
  p.edge = std::move(edge);
  p.validate();
  return p;
}

class ParallelRandomStepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelRandomStepTest, RandomProblemsAgreeAcrossWidths) {
  std::mt19937 rng(GetParam());
  const auto p = randomProblem(rng, 4, 3, 3, 0.5);
  const StepResult r1 = applyR(p, withThreads(1));
  for (const int threads : kWidths) {
    if (threads == 1) continue;
    expectStepResultsEqual(r1, applyR(p, withThreads(threads)), threads);
  }
  if (r1.problem.alphabet.size() > 12) return;  // keep Rbar cheap
  // Rbar may legitimately reject (empty after maximization); all widths
  // must then agree on the rejection.
  StepResult rbar1;
  bool rejected = false;
  try {
    rbar1 = applyRbar(r1.problem, withThreads(1));
  } catch (const Error&) {
    rejected = true;
  }
  for (const int threads : kWidths) {
    if (threads == 1) continue;
    try {
      const StepResult rbar = applyRbar(r1.problem, withThreads(threads));
      EXPECT_FALSE(rejected) << "numThreads=" << threads
                             << ": parallel succeeded, serial rejected";
      expectStepResultsEqual(rbar1, rbar, threads);
    } catch (const Error&) {
      EXPECT_TRUE(rejected) << "numThreads=" << threads
                            << ": parallel rejected, serial succeeded";
    }
  }
}

TEST_P(ParallelRandomStepTest, MaximalEdgePairsAgreeAcrossWidths) {
  std::mt19937 rng(GetParam() + 1000);
  const auto p = randomProblem(rng, 5, 3, 2, 0.4);
  const auto serial = maximalEdgePairs(p.edge, p.alphabet.size(), 1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, maximalEdgePairs(p.edge, p.alphabet.size(), threads))
        << "numThreads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandomStepTest,
                         ::testing::Range(1u, 16u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ParallelChain, CertifyChainAgreesAcrossWidths) {
  for (const Count delta : {Count{64}, Count{1} << 10, Count{1} << 16}) {
    const auto chain = core::exactChain(delta, 1);
    const std::string serial = core::certifyChain(chain, 1);
    for (const int threads : {2, 8, 0}) {
      EXPECT_EQ(serial, core::certifyChain(chain, threads))
          << "delta=" << delta << " numThreads=" << threads;
    }
  }
}

}  // namespace
}  // namespace relb::re
