// Canonical forms (canonical.hpp): idempotence, invariance under random
// label permutations (with arbitrary renamed alphabets), and agreement
// between the canonical hash and the isomorphism decision procedure.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "re/canonical.hpp"
#include "re/encodings.hpp"
#include "re/problem.hpp"
#include "re/rename.hpp"

namespace relb::re {
namespace {

// A random permutation of p's labels with fresh synthetic names, exercising
// both the order-invariance and the name-invariance of canonicalize().
Problem randomPermutation(const Problem& p, std::mt19937& rng) {
  const int n = p.alphabet.size();
  std::vector<Label> map(static_cast<std::size_t>(n));
  std::iota(map.begin(), map.end(), Label{0});
  std::shuffle(map.begin(), map.end(), rng);
  Alphabet fresh;
  for (int l = 0; l < n; ++l) {
    fresh.add("q" + std::to_string(rng() % 1000) + "_" + std::to_string(l));
  }
  return renameProblem(p, map, fresh);
}

std::vector<Problem> testbed() {
  return {
      misProblem(3),
      misProblem(4),
      sinklessOrientationProblem(3),
      maximalMatchingProblem(4),
      weakColoringProblem(3, 2),
      cColoringProblem(3, 3),
      Problem::parse("M^3\nP O^2", "M [PO]\nO O"),
  };
}

TEST(Canonical, IdempotentOnTestbed) {
  for (const Problem& p : testbed()) {
    const CanonicalForm once = canonicalize(p);
    const CanonicalForm twice = canonicalize(once.problem);
    EXPECT_EQ(once.problem, twice.problem) << p.render();
    EXPECT_EQ(once.hash, twice.hash) << p.render();
  }
}

TEST(Canonical, InvariantUnderRandomLabelPermutations) {
  std::mt19937 rng(20210715);
  for (const Problem& p : testbed()) {
    const CanonicalForm base = canonicalize(p);
    for (int trial = 0; trial < 12; ++trial) {
      const Problem q = randomPermutation(p, rng);
      const CanonicalForm perm = canonicalize(q);
      EXPECT_EQ(base.problem, perm.problem)
          << p.render() << "\nvs permuted\n"
          << q.render();
      EXPECT_EQ(base.hash, perm.hash);
    }
  }
}

TEST(Canonical, MapSendsInputToCanonical) {
  // Configuration *order* is part of the canonical form but not preserved by
  // renameProblem, so compare the constraints as sorted configuration sets.
  const auto sortedConfigs = [](const Constraint& c) {
    std::vector<Configuration> configs = c.configurations();
    std::sort(configs.begin(), configs.end());
    return configs;
  };
  for (const Problem& p : testbed()) {
    const CanonicalForm form = canonicalize(p);
    ASSERT_EQ(form.map.size(),
              static_cast<std::size_t>(p.alphabet.size()));
    const Problem mapped =
        renameProblem(p, form.map, form.problem.alphabet);
    EXPECT_EQ(sortedConfigs(mapped.node), sortedConfigs(form.problem.node));
    EXPECT_EQ(sortedConfigs(mapped.edge), sortedConfigs(form.problem.edge));
  }
}

TEST(Canonical, DistinguishesNonIsomorphicProblems) {
  // Same label counts, different structure: MIS(3) vs sinkless orientation
  // padded... simplest: MIS(3) vs maximal matching(3) have different
  // alphabet sizes; use two genuinely different 2-label problems instead.
  const Problem a = Problem::parse("A^2\nB^2", "A B");
  const Problem b = Problem::parse("A^2\nB^2", "A A\nB B");
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
  EXPECT_NE(canonicalize(a).problem, canonicalize(b).problem);
}

TEST(Canonical, StructuralHashSensitiveToNamesAndOrder) {
  const Problem a = Problem::parse("A^2\nB^2", "A B");
  // Same language, different configuration order.
  const Problem b = Problem::parse("B^2\nA^2", "A B");
  EXPECT_NE(structuralHash(a), structuralHash(b));
  EXPECT_EQ(structuralHash(a), structuralHash(a));
  // Canonical hash ignores the order difference (it is a label permutation
  // of... actually the identity: same problem, configurations reordered).
  EXPECT_EQ(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(Canonical, AgreesWithIsomorphismSearchOnRandomPairs) {
  std::mt19937 rng(99);
  for (const Problem& p : testbed()) {
    if (p.alphabet.size() > 10) continue;  // findIsomorphism guard
    const Problem q = randomPermutation(p, rng);
    EXPECT_TRUE(equivalentUpToRenaming(p, q));
    EXPECT_EQ(canonicalize(p).hash, canonicalize(q).hash);
  }
}

TEST(Canonical, ThrowsBeyondPermutationBudget) {
  // A fully symmetric 6-label problem: every label interchangeable, so the
  // refinement cannot split anything and the tie class is all 6! orders.
  Problem p = Problem::parse("A B C D E F", "A A\nB B\nC C\nD D\nE E\nF F");
  EXPECT_THROW((void)canonicalize(p, 10), Error);
  EXPECT_NO_THROW((void)canonicalize(p, 720));
}

}  // namespace
}  // namespace relb::re
