#include "re/simplify.hpp"

#include <gtest/gtest.h>

#include "re/encodings.hpp"
#include "re/relax.hpp"
#include "re/zero_round.hpp"

namespace relb::re {
namespace {

TEST(MergeLabels, ImageIsZeroRoundReachable) {
  // Merging P and O in MIS: the identity-ish map into the merged problem is
  // a valid 0-round relabeling by construction.
  const auto mis = misProblem(3);
  const auto merged = mergeTwoLabels(mis, mis.alphabet.at("P"),
                                     mis.alphabet.at("O"));
  EXPECT_EQ(merged.alphabet.size(), 2);
  // map: M -> M, P -> P, O -> P (the merged label keeps the first name).
  const std::vector<Label> map{merged.alphabet.at("M"),
                               merged.alphabet.at("P"),
                               merged.alphabet.at("P")};
  EXPECT_TRUE(isZeroRoundRelabeling(mis, merged, map));
}

TEST(MergeLabels, MergedMisBecomesEasy) {
  // MIS with P = O collapses to "dominating set with pointer soup", which
  // is still not 0-round solvable (M incompatible with M, merged label
  // incompatible with itself? check what the analyzer says) -- the point of
  // the test is just consistency, so compare against the analyzer.
  const auto mis = misProblem(3);
  const auto merged = mergeTwoLabels(mis, mis.alphabet.at("P"),
                                     mis.alphabet.at("O"));
  // PO merged: edge constraint now allows [PO][PO] via OO, so the merged
  // label is self-compatible; configuration P' O'^2 = P'^3 exists => the
  // problem is 0-round solvable (everyone claims "pointer").
  EXPECT_TRUE(zeroRoundSolvableWithEdgeInputs(merged));
}

TEST(MergeLabels, Validation) {
  const auto mis = misProblem(3);
  EXPECT_THROW(mergeTwoLabels(mis, 0, 0), Error);
  EXPECT_THROW(mergeTwoLabels(mis, 0, 9), Error);
  Alphabet tiny({"A"});
  EXPECT_THROW(mergeLabels(mis, {0, 0}, tiny), Error);       // size mismatch
  EXPECT_THROW(mergeLabels(mis, {0, 0, 3}, tiny), Error);    // out of range
}

TEST(MergeLabels, PreservesDegrees) {
  const auto p = maximalMatchingProblem(4);
  const auto merged = mergeTwoLabels(p, 0, 1);
  EXPECT_EQ(merged.delta(), 4);
  EXPECT_EQ(merged.edge.degree(), 2);
}

TEST(RestrictToLabels, DropsConfigurations) {
  // Restricting MIS to {M, P, O} is the identity; to {P, O} loses M^Delta
  // and the M edge configurations.
  const auto mis = misProblem(3);
  const auto same = restrictToLabels(mis, mis.alphabet.all());
  EXPECT_EQ(same.node.size(), mis.node.size());

  LabelSet po;
  po.insert(mis.alphabet.at("P"));
  po.insert(mis.alphabet.at("O"));
  const auto restricted = restrictToLabels(mis, po);
  EXPECT_EQ(restricted.node.size(), 1u);  // P O^2 only
  EXPECT_EQ(restricted.edge.size(), 1u);  // OO only
}

TEST(RestrictToLabels, ThrowsWhenEmpty) {
  const auto mis = misProblem(3);
  LabelSet mOnly;
  mOnly.insert(mis.alphabet.at("M"));
  // Keeping only M leaves no edge configuration (MM is forbidden).
  EXPECT_THROW(restrictToLabels(mis, mOnly), Error);
}

TEST(RestrictToLabels, SolutionsEmbedIntoOriginal) {
  // Any solution of the restriction is verbatim a solution of the original:
  // the identity relabeling must be a valid 0-round reduction.
  const auto p = bMatchingProblem(4, 2);
  LabelSet keep = p.alphabet.all();
  const auto restricted = restrictToLabels(p, keep);
  std::vector<Label> identity;
  for (int l = 0; l < p.alphabet.size(); ++l) {
    identity.push_back(static_cast<Label>(l));
  }
  EXPECT_TRUE(isZeroRoundRelabeling(restricted, p, identity));
}

}  // namespace
}  // namespace relb::re
