// Golden contract of the CLI, enforced at the driver library layer: the
// usage text is pinned byte-for-byte (tools/check_docs.sh cross-checks the
// documented flags against it, and embedders key off the same string), the
// flag grammar of parseArgs() is stable, and the exit-code contract is
//   0 = success, 1 = step/certification/verification failure,
//   2 = usage or parse error.
// If a change here is intentional, update docs/cli.md and the README in the
// same commit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/driver.hpp"

namespace relb::driver {
namespace {

ParseOutcome parse(std::vector<const char*> argv) {
  return parseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliGolden, UsageTextIsPinnedByteForByte) {
  const std::string expected =
      "usage: round_eliminator_cli [flags] \"<node configs>\" "
      "\"<edge configs>\" [maxSteps] [threads]\n"
      "       round_eliminator_cli [flags] --chain DELTA [--x0 K]\n"
      "       round_eliminator_cli [flags] --family NAME | --family-def FILE "
      "[maxSteps] [threads]\n"
      "       round_eliminator_cli --verify-cert FILE\n"
      "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
      "threads: 0 = hardware concurrency (default), 1 = serial\n"
      "flags: --stats --store DIR --resume --save-cert FILE\n"
      "       --verify-cert FILE --chain DELTA --x0 K\n"
      "       --family NAME --family-def FILE --param NAME=VALUE\n"
      "       --trace FILE --trace-format {chrome,text} --report FILE\n";
  EXPECT_EQ(usageText("round_eliminator_cli"), expected);
}

TEST(CliGolden, HelpRequestsUsageNotAnError) {
  for (const char* flag : {"--help", "-h"}) {
    const ParseOutcome outcome = parse({"cli", flag});
    EXPECT_TRUE(outcome.helpRequested) << flag;
    EXPECT_TRUE(outcome.error.empty()) << flag;
  }
}

TEST(CliGolden, MissingFlagValueIsAParseError) {
  const ParseOutcome outcome = parse({"cli", "--store"});
  EXPECT_EQ(outcome.error, "--store requires a value");
}

TEST(CliGolden, BadTraceFormatIsAParseError) {
  const ParseOutcome outcome = parse({"cli", "--trace-format", "xml"});
  EXPECT_EQ(outcome.error, "--trace-format must be 'chrome' or 'text'");
}

TEST(CliGolden, PositionalGrammar) {
  const ParseOutcome outcome =
      parse({"cli", "M M M; P O O", "M P; O O", "3", "1"});
  ASSERT_TRUE(outcome.error.empty());
  ASSERT_FALSE(outcome.helpRequested);
  const RunRequest& req = outcome.request;
  EXPECT_EQ(req.mode, RunRequest::Mode::kProblem);
  EXPECT_EQ(req.nodeSpec, "M M M; P O O");
  EXPECT_EQ(req.edgeSpec, "M P; O O");
  EXPECT_EQ(req.maxSteps, 3);
  EXPECT_EQ(req.numThreads, 1);
}

TEST(CliGolden, ChainModeShiftsPositionals) {
  const ParseOutcome outcome = parse({"cli", "--chain", "8", "--x0", "2",
                                      "4", "1"});
  ASSERT_TRUE(outcome.error.empty());
  const RunRequest& req = outcome.request;
  EXPECT_EQ(req.mode, RunRequest::Mode::kChain);
  EXPECT_EQ(req.chainDelta, 8);
  EXPECT_EQ(req.chainX0, 2);
  // With the problem text implied, [maxSteps] [threads] move up front.
  EXPECT_EQ(req.maxSteps, 4);
  EXPECT_EQ(req.numThreads, 1);
}

TEST(CliGolden, FamilyModeShiftsPositionals) {
  const ParseOutcome outcome = parse({"cli", "--family", "maximal_matching",
                                      "--param", "delta=4", "4", "1"});
  ASSERT_TRUE(outcome.error.empty());
  const RunRequest& req = outcome.request;
  EXPECT_EQ(req.mode, RunRequest::Mode::kFamily);
  EXPECT_EQ(req.familyName, "maximal_matching");
  ASSERT_EQ(req.familyParams.size(), 1u);
  EXPECT_EQ(req.familyParams[0].first, "delta");
  EXPECT_EQ(req.familyParams[0].second, 4);
  EXPECT_EQ(req.maxSteps, 4);
  EXPECT_EQ(req.numThreads, 1);
}

TEST(CliGolden, MalformedParamIsAParseError) {
  const ParseOutcome outcome =
      parse({"cli", "--family", "pi", "--param", "delta"});
  EXPECT_EQ(outcome.error, "--param expects NAME=VALUE, got 'delta'");
}

TEST(CliGolden, UnknownFamilyExitsOne) {
  RunRequest req;
  req.mode = RunRequest::Mode::kFamily;
  req.familyName = "no_such_family";
  const RunResult result = run(req);
  EXPECT_EQ(result.exitCode(), 1);
  EXPECT_EQ(result.status, RunStatus::kFailure);
  EXPECT_NE(result.diagnostics.find("unknown built-in family"),
            std::string::npos);
}

TEST(CliGolden, UnknownFlagsStayPositional) {
  const ParseOutcome outcome = parse({"cli", "--bogus", "M P; O O"});
  ASSERT_TRUE(outcome.error.empty());
  EXPECT_EQ(outcome.request.nodeSpec, "--bogus");
  EXPECT_EQ(outcome.request.edgeSpec, "M P; O O");
}

TEST(CliGolden, SuccessfulProblemRunExitsZero) {
  RunRequest req;
  req.nodeSpec = "M M M; P O O";
  req.edgeSpec = "M P; O O";
  req.maxSteps = 1;
  req.numThreads = 1;
  const RunResult result = run(req);
  EXPECT_EQ(result.exitCode(), 0);
  EXPECT_EQ(result.status, RunStatus::kOk);
  EXPECT_NE(result.output.find("problem (Delta = 3"), std::string::npos);
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics;
}

TEST(CliGolden, MissingPositionalsExitTwoWithUsage) {
  const RunResult result = run(RunRequest{});  // no node/edge spec
  EXPECT_EQ(result.exitCode(), 2);
  EXPECT_EQ(result.status, RunStatus::kUsage);
  EXPECT_NE(result.diagnostics.find("usage: round_eliminator_cli"),
            std::string::npos);
}

TEST(CliGolden, ParseErrorExitsTwo) {
  RunRequest req;
  req.nodeSpec = "M ^^ not a config";
  req.edgeSpec = "M P";
  const RunResult result = run(req);
  EXPECT_EQ(result.exitCode(), 2);
  EXPECT_NE(result.diagnostics.find("parse error"), std::string::npos);
}

TEST(CliGolden, ResumeWithoutStoreExitsTwo) {
  RunRequest req;
  req.nodeSpec = "M M M; P O O";
  req.edgeSpec = "M P; O O";
  req.resume = true;
  const RunResult result = run(req);
  EXPECT_EQ(result.exitCode(), 2);
  EXPECT_NE(result.diagnostics.find("--resume requires --store DIR"),
            std::string::npos);
}

TEST(CliGolden, BadCertificateExitsOne) {
  RunRequest req;
  req.mode = RunRequest::Mode::kVerifyCertificate;
  req.verifyCertPath = "/nonexistent/cert.json";
  const RunResult result = run(req);
  EXPECT_EQ(result.exitCode(), 1);
  EXPECT_EQ(result.status, RunStatus::kFailure);
  EXPECT_NE(result.diagnostics.find("verify error"), std::string::npos);
}

}  // namespace
}  // namespace relb::driver
