// Cooperative-drain behavior of driver::run (RunRequest::drainOnSignal):
// an interrupted run stops at the next checkpoint with exit code 1, says so
// in the diagnostics, and still flushes the partial output and the
// --report file -- the whole point of draining instead of dying.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "driver/driver.hpp"
#include "util/shutdown.hpp"

namespace relb::driver {
namespace {

namespace fs = std::filesystem;

RunRequest problemRequest() {
  RunRequest request;
  request.mode = RunRequest::Mode::kProblem;
  request.nodeSpec = "M^3; P O^2";
  request.edgeSpec = "M [P O]; O O";
  request.maxSteps = 3;
  return request;
}

TEST(RunInterrupt, InterruptedProblemRunStopsEarlyAndFlushesReport) {
  const fs::path report =
      fs::path(testing::TempDir()) / "interrupt_report.json";
  fs::remove(report);

  util::ShutdownSignal guard;
  guard.trigger();  // the signal arrives before the run even starts

  RunRequest request = problemRequest();
  request.drainOnSignal = true;
  request.reportPath = report.string();
  const RunResult result = run(request);

  EXPECT_EQ(result.exitCode(), 1);
  EXPECT_NE(result.diagnostics.find("interrupted"), std::string::npos)
      << result.diagnostics;
  // Partial output was flushed: the problem header prints before the first
  // checkpoint.
  EXPECT_NE(result.output.find("problem (Delta = 3"), std::string::npos)
      << result.output;
  // And the report file still got written.
  EXPECT_TRUE(fs::exists(report));
}

TEST(RunInterrupt, InterruptedChainRunStopsBeforeCertification) {
  util::ShutdownSignal guard;
  guard.trigger();

  RunRequest request;
  request.mode = RunRequest::Mode::kChain;
  request.chainDelta = 3;
  request.drainOnSignal = true;
  const RunResult result = run(request);
  EXPECT_EQ(result.exitCode(), 1);
  EXPECT_NE(result.diagnostics.find("interrupted"), std::string::npos);
}

TEST(RunInterrupt, WithoutDrainFlagTheSignalIsIgnored) {
  util::ShutdownSignal guard;
  guard.trigger();

  RunRequest request = problemRequest();
  request.drainOnSignal = false;  // embedder owns its own signal policy
  const RunResult result = run(request);
  EXPECT_EQ(result.exitCode(), 0) << result.diagnostics;
}

TEST(RunInterrupt, UninterruptedRunInstallsAndRemovesItsOwnGuard) {
  ASSERT_EQ(util::ShutdownSignal::active(), nullptr);
  RunRequest request = problemRequest();
  request.drainOnSignal = true;  // the CLI configuration
  const RunResult result = run(request);
  EXPECT_EQ(result.exitCode(), 0) << result.diagnostics;
  // The run's own guard was uninstalled on the way out.
  EXPECT_EQ(util::ShutdownSignal::active(), nullptr);
}

}  // namespace
}  // namespace relb::driver
