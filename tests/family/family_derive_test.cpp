// The derive path: every built-in re-derives its pinned lower bound at the
// parameter defaults, and the emitted certificates verify engine-free.
#include "family/derive.hpp"

#include <gtest/gtest.h>

#include "family/builtin.hpp"
#include "io/verify.hpp"

namespace relb::family {
namespace {

// One shared core warms the step/zero-round caches across the suite; the
// derivations are bit-identical warm or cold (the engine contract), so this
// is purely a runtime saving.
re::EngineSession makeSession() {
  static const auto core = std::make_shared<re::EngineCore>();
  return re::EngineSession(core);
}

TEST(FamilyDerive, BuiltinsReachTheirPinnedBounds) {
  re::EngineSession session = makeSession();
  for (const FamilyDef& def : builtinFamilies()) {
    const FamilyDerivation d = deriveFamilyBound(def, {}, session);
    ASSERT_TRUE(d.published.has_value()) << def.name;
    EXPECT_TRUE(d.meetsPublishedBound())
        << def.name << ": derived " << d.bound.rounds << " < pinned "
        << *d.published;
  }
}

TEST(FamilyDerive, DerivedBoundsMatchTheProbedValues) {
  re::EngineSession session = makeSession();
  const auto rounds = [&](const char* name) {
    return deriveFamilyBound(*findBuiltin(name), {}, session).bound.rounds;
  };
  EXPECT_GE(rounds("maximal_matching"), 3);
  EXPECT_GE(rounds("two_ruling_set"), 2);
  EXPECT_GE(rounds("delta_coloring"), 2);
  EXPECT_GE(rounds("pi"), 1);
}

TEST(FamilyDerive, CertificatesVerifyEngineFree) {
  re::EngineSession session = makeSession();
  for (const FamilyDef& def : builtinFamilies()) {
    const FamilyDerivation d = deriveFamilyBound(def, {}, session);
    ASSERT_FALSE(d.certificate.steps.empty()) << def.name;
    EXPECT_EQ(d.certificate.kind, "speedup-trace");
    const io::VerifyReport report = io::verifyCertificate(d.certificate);
    EXPECT_TRUE(report.ok) << def.name << ": " << report.describe();
  }
}

TEST(FamilyDerive, CertificateCarriesFamilyMetadata) {
  re::EngineSession session = makeSession();
  const FamilyDef def = *findBuiltin("two_ruling_set");
  const FamilyDerivation d = deriveFamilyBound(def, {}, session);
  bool sawFamily = false;
  bool sawDelta = false;
  for (const auto& [key, value] : d.certificate.engineInfo) {
    if (key == "family" && value == "two_ruling_set") sawFamily = true;
    if (key == "param.delta" && value == "3") sawDelta = true;
  }
  EXPECT_TRUE(sawFamily);
  EXPECT_TRUE(sawDelta);
}

TEST(FamilyDerive, CertificateBytesRoundTripThroughJson) {
  re::EngineSession session = makeSession();
  const FamilyDerivation d =
      deriveFamilyBound(*findBuiltin("maximal_matching"), {}, session);
  const std::string bytes = io::certificateToJson(d.certificate).dumpPretty();
  const io::Certificate reloaded =
      io::certificateFromJson(io::Json::parse(bytes));
  EXPECT_EQ(io::certificateToJson(reloaded).dumpPretty(), bytes);
}

TEST(FamilyDerive, DerivationIsDeterministicAcrossSessions) {
  const auto once = [] {
    re::EngineSession session;
    return io::certificateToJson(
               deriveFamilyBound(*findBuiltin("two_ruling_set"), {}, session)
                   .certificate)
        .dumpPretty();
  };
  EXPECT_EQ(once(), once());
}

TEST(FamilyDerive, OverridesFlowThroughDerivation) {
  re::EngineSession session = makeSession();
  const FamilyDerivation d = deriveFamilyBound(*findBuiltin("pi"),
                                               {{"delta", 3}, {"a", 2}},
                                               session);
  EXPECT_EQ(d.params.at("delta"), 3);
  EXPECT_EQ(d.problem.delta(), 3);
}

}  // namespace
}  // namespace relb::family
