// The DSL's arithmetic sublanguage: parse, evaluate, render round-trip.
#include "family/expr.hpp"

#include <gtest/gtest.h>

namespace relb::family {
namespace {

Env env(std::initializer_list<std::pair<const std::string, re::Count>> kv) {
  return Env(kv);
}

TEST(FamilyExpr, EvaluatesArithmetic) {
  const Env e = env({{"delta", 7}, {"x", 2}});
  EXPECT_EQ(eval(parseExpr("delta - x"), e), 5);
  EXPECT_EQ(eval(parseExpr("2 * delta + 1"), e), 15);
  EXPECT_EQ(eval(parseExpr("-x"), e), -2);
  EXPECT_EQ(eval(parseExpr("(delta + 1) * (x - 1)"), e), 8);
}

TEST(FamilyExpr, DivisionIsFloor) {
  const Env e = env({{"a", 7}, {"b", -7}});
  EXPECT_EQ(eval(parseExpr("a / 2"), e), 3);
  EXPECT_EQ(eval(parseExpr("b / 2"), e), -4);  // floor, not truncation
  EXPECT_EQ(eval(parseExpr("(a - 2 * 1 - 1) / 2"), e), 2);
  EXPECT_THROW((void)eval(parseExpr("a / 0"), e), re::Error);
}

TEST(FamilyExpr, PrecedenceAndAssociativity) {
  const Env e;
  EXPECT_EQ(eval(parseExpr("2 + 3 * 4"), e), 14);
  EXPECT_EQ(eval(parseExpr("10 - 3 - 2"), e), 5);   // left-associative
  EXPECT_EQ(eval(parseExpr("16 / 4 / 2"), e), 2);   // left-associative
  EXPECT_EQ(eval(parseExpr("2 * (3 + 4)"), e), 14);
}

TEST(FamilyExpr, UnboundVariableThrows) {
  EXPECT_THROW((void)eval(parseExpr("delta"), Env{}), re::Error);
}

TEST(FamilyExpr, OverflowGuardThrows) {
  const Env e = env({{"big", (re::Count{1} << 39)}});
  EXPECT_THROW((void)eval(parseExpr("big * big"), e), re::Error);
}

TEST(FamilyExpr, MalformedInputThrows) {
  EXPECT_THROW((void)parseExpr(""), re::Error);
  EXPECT_THROW((void)parseExpr("1 +"), re::Error);
  EXPECT_THROW((void)parseExpr("(1"), re::Error);
  EXPECT_THROW((void)parseExpr("1 2"), re::Error);  // trailing input
  EXPECT_THROW((void)parseExpr("#"), re::Error);
}

TEST(FamilyExpr, RenderParsesBackToSameTree) {
  for (const char* text :
       {"delta - x", "a + b * c", "(a + b) * c", "a - (b - c)", "a - b - c",
        "-x", "-(a + b)", "a / 2 / 3", "a / (2 / 3)", "2 * delta + 1",
        "--x", "0", "a"}) {
    const Expr e = parseExpr(text);
    const std::string rendered = render(e);
    EXPECT_EQ(parseExpr(rendered), e) << text << " -> " << rendered;
    // Rendering is a fixpoint: render(parse(render(e))) == render(e).
    EXPECT_EQ(render(parseExpr(rendered)), rendered);
  }
}

TEST(FamilyExpr, CondEvaluatesConjunction) {
  const Env e = env({{"a", 3}, {"delta", 4}});
  EXPECT_TRUE(eval(parseCond("a <= delta"), e));
  EXPECT_TRUE(eval(parseCond("a <= delta and a > 0"), e));
  EXPECT_FALSE(eval(parseCond("a <= delta and a == 0"), e));
  EXPECT_TRUE(eval(parseCond("a != delta"), e));
  EXPECT_FALSE(eval(parseCond("a >= delta"), e));
  EXPECT_TRUE(eval(Cond{}, e));  // empty conjunction is true
}

TEST(FamilyExpr, CondRenderRoundTrips) {
  for (const char* text :
       {"a <= delta", "a <= delta and x >= 0 and a != x", "j != c",
        "a + 1 < 2 * b"}) {
    const Cond c = parseCond(text);
    EXPECT_EQ(parseCond(render(c)), c) << text;
  }
}

}  // namespace
}  // namespace relb::family
