// The DSL text format: parse/render round-trips, diagnostics, hardening,
// and the pinned families/ directory (file bytes == canonical serialization
// of the built-ins).
#include "family/text.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>

#include "family/builtin.hpp"

namespace relb::family {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

TEST(FamilyText, BuiltinsRoundTripStructurally) {
  for (const FamilyDef& def : builtinFamilies()) {
    const std::string text = renderFamilyText(def);
    EXPECT_EQ(parseFamilyText(text), def) << def.name;
    // Canonical serialization is a fixpoint.
    EXPECT_EQ(renderFamilyText(parseFamilyText(text)), text) << def.name;
  }
}

TEST(FamilyText, FamiliesDirectoryPinsCanonicalSerialization) {
  for (const FamilyDef& def : builtinFamilies()) {
    const std::string path =
        std::string(RELB_FAMILY_DIR) + "/" + def.name + ".fam";
    EXPECT_EQ(readFile(path), renderFamilyText(def))
        << path << " out of sync with the built-in definition; regenerate "
        << "with: fuzz_family --generate " << RELB_FAMILY_DIR;
  }
}

TEST(FamilyText, ParsesMetadataAndStructure) {
  const FamilyDef def = parseFamilyText(
      "# a comment\n"
      "family demo\n"
      "title A demo family\n"
      "model det-PN high-girth\n"
      "cite arXiv:0000.00000\n"
      "param delta range 2 .. 5 default 3\n"
      "require delta >= 2\n"
      "bound delta - 1\n"
      "alphabet A B\n"
      "\n"
      "node A^delta\n"
      "node B A^(delta - 1)\n"
      "edge A [A B]\n");
  EXPECT_EQ(def.name, "demo");
  EXPECT_EQ(def.title, "A demo family");
  EXPECT_EQ(def.model, "det-PN high-girth");
  EXPECT_EQ(def.cite, "arXiv:0000.00000");
  ASSERT_EQ(def.params.size(), 1u);
  EXPECT_EQ(def.params[0].name, "delta");
  ASSERT_EQ(def.requirements.size(), 1u);
  ASSERT_TRUE(def.bound.has_value());
  EXPECT_EQ(def.alphabet.size(), 2u);
  EXPECT_EQ(def.node.size(), 2u);
  EXPECT_EQ(def.edge.size(), 1u);
  EXPECT_EQ(eval(*def.bound, resolveParams(def, {})), 2);
}

TEST(FamilyText, RejectsMalformedInput) {
  // No family directive.
  EXPECT_THROW((void)parseFamilyText(""), re::Error);
  EXPECT_THROW((void)parseFamilyText("# only a comment\n"), re::Error);
  // Directives before 'family'.
  EXPECT_THROW((void)parseFamilyText("alphabet M\nfamily t\n"), re::Error);
  // Unknown directive.
  EXPECT_THROW(
      (void)parseFamilyText("family t\nfrobnicate M\nalphabet M\n"),
      re::Error);
  // Duplicates.
  EXPECT_THROW((void)parseFamilyText("family t\nfamily u\n"), re::Error);
  EXPECT_THROW((void)parseFamilyText(
                   "family t\nbound 1\nbound 2\nalphabet M\nnode M\nedge M "
                   "M\n"),
               re::Error);
  // Structurally empty definitions.
  EXPECT_THROW((void)parseFamilyText("family t\n"), re::Error);
  EXPECT_THROW((void)parseFamilyText("family t\nalphabet M\n"), re::Error);
  // Broken grammar inside a directive.
  EXPECT_THROW((void)parseFamilyText(
                   "family t\nparam p range 1 default 2\nalphabet M\n"
                   "node M\nedge M M\n"),
               re::Error);
  EXPECT_THROW((void)parseFamilyText(
                   "family t\nalphabet M\nnode M^\nedge M M\n"),
               re::Error);
  EXPECT_THROW((void)parseFamilyText(
                   "family t\nalphabet M\nnode [M\nedge M M\n"),
               re::Error);
}

TEST(FamilyText, RejectsControlCharactersAndOversizedInput) {
  EXPECT_THROW((void)parseFamilyText("family t\x01\nalphabet M\n"),
               re::Error);
  const std::string longLine(5000, 'a');
  EXPECT_THROW((void)parseFamilyText("family t\n# " + longLine + "\n"),
               re::Error);
  const std::string huge(2 << 20, 'x');
  EXPECT_THROW((void)parseFamilyText(huge), re::Error);
}

TEST(FamilyText, ErrorsCarryLineNumbers) {
  try {
    (void)parseFamilyText("family t\nalphabet M\nnode M^\nedge M M\n");
    FAIL() << "expected re::Error";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FamilyText, CommentsAndBlankLinesAreIgnored) {
  const FamilyDef a = parseFamilyText(
      "family t\nalphabet M\nnode M^2\nedge M M\n");
  const FamilyDef b = parseFamilyText(
      "# header\n\nfamily t\n\n# middle\nalphabet M\n\nnode M^2\n"
      "# tail\nedge M M\n");
  EXPECT_EQ(a, b);
}

TEST(FamilyText, WindowsLineEndingsParse) {
  const FamilyDef def = parseFamilyText(
      "family t\r\nalphabet M\r\nnode M^2\r\nedge M M\r\n");
  EXPECT_EQ(def.name, "t");
}

TEST(FamilyText, SaveLoadRoundTrips) {
  const FamilyDef def = *findBuiltin("delta_coloring");
  const auto path =
      std::filesystem::temp_directory_path() /
      ("relb_family_text_test_" + std::to_string(::getpid()) + ".fam");
  saveFamilyFile(path, def);
  EXPECT_EQ(loadFamilyFile(path), def);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace relb::family
