// Golden certificates: the 2-ruling-set and maximal-matching derivations
// are pinned byte-for-byte in tests/data/ (mirroring the PR 3 golden family
// chain), and any tampering is rejected before semantic verification.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "family/builtin.hpp"
#include "family/derive.hpp"
#include "io/verify.hpp"

namespace relb::family {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(RELB_TEST_DATA_DIR) + "/golden_" + name +
         "_certificate.json";
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

std::string deriveBytes(const std::string& familyName) {
  re::EngineSession session;
  const FamilyDerivation d =
      deriveFamilyBound(*findBuiltin(familyName), {}, session);
  return io::certificateToJson(d.certificate).dumpPretty();
}

class FamilyGoldenCert : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyGoldenCert, DerivationReproducesGoldenBytes) {
  EXPECT_EQ(deriveBytes(GetParam()), readFile(goldenPath(GetParam())))
      << "golden certificate drift for " << GetParam()
      << "; regenerate with: round_eliminator_cli --family " << GetParam()
      << " --save-cert <golden path>";
}

TEST_P(FamilyGoldenCert, GoldenFileVerifiesEngineFree) {
  const io::Certificate cert = io::loadCertificate(goldenPath(GetParam()));
  const io::VerifyReport report = io::verifyCertificate(cert);
  EXPECT_TRUE(report.ok) << report.describe();
}

TEST_P(FamilyGoldenCert, TamperedProblemIsRejected) {
  // Flip one exponent inside a step's problem: the steps-section checksum
  // must catch it before any semantic check runs.
  std::string bytes = readFile(goldenPath(GetParam()));
  const auto pos = bytes.find("\"count\": 2");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 10, "\"count\": 3");
  EXPECT_THROW(
      (void)io::certificateFromJson(io::Json::parse(bytes)), re::Error);
}

TEST_P(FamilyGoldenCert, TamperedVerdictIsRejected) {
  // Replace the first verdict with a same-length token that is still valid
  // JSON but a different value, so the steps checksum -- not the JSON
  // parser -- must reject the document.  (maximal_matching's only verdict
  // is `true`: its input is 0-round solvable on the symmetric-port family;
  // the >= 3 rounds hardness lives in the edge-input model.)
  std::string bytes = readFile(goldenPath(GetParam()));
  const std::string key = "\"zero_round_solvable\": ";
  const auto pos = bytes.find(key);
  ASSERT_NE(pos, std::string::npos);
  const auto vpos = pos + key.size();
  if (bytes.compare(vpos, 5, "false") == 0) {
    bytes.replace(vpos, 5, "1e000");
  } else {
    ASSERT_EQ(bytes.compare(vpos, 4, "true"), 0);
    bytes.replace(vpos, 4, "1e00");
  }
  EXPECT_THROW(
      (void)io::certificateFromJson(io::Json::parse(bytes)), re::Error);
}

TEST_P(FamilyGoldenCert, TruncationIsRejected) {
  const std::string bytes = readFile(goldenPath(GetParam()));
  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW((void)io::Json::parse(truncated), re::Error);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyGoldenCert,
                         ::testing::Values("two_ruling_set",
                                           "maximal_matching"));

}  // namespace
}  // namespace relb::family
