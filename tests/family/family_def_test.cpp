// FamilyDef instantiation semantics: parameter resolution, comprehension
// expansion, and the bit-for-bit equivalence of the DSL-built Pi_Delta(a, x)
// against the hard-coded core constructor.
#include "family/def.hpp"

#include <gtest/gtest.h>

#include "core/family.hpp"
#include "family/builtin.hpp"
#include "family/text.hpp"
#include "re/canonical.hpp"

namespace relb::family {
namespace {

TEST(FamilyDef, ResolveParamsAppliesDefaultsAndOverrides) {
  const FamilyDef def = *findBuiltin("pi");
  const Env defaults = resolveParams(def, {});
  EXPECT_EQ(defaults.at("delta"), 4);
  EXPECT_EQ(defaults.at("a"), 2);
  EXPECT_EQ(defaults.at("x"), 0);

  const Env overridden = resolveParams(def, {{"delta", 6}, {"a", 5}});
  EXPECT_EQ(overridden.at("delta"), 6);
  EXPECT_EQ(overridden.at("a"), 5);
  EXPECT_EQ(overridden.at("x"), 0);
}

TEST(FamilyDef, ResolveParamsChecksRangesRequirementsAndNames) {
  const FamilyDef def = *findBuiltin("pi");
  // a ranges over 0..delta, so a = 5 at delta = 4 is out of range.
  EXPECT_THROW((void)resolveParams(def, {{"a", 5}}), re::Error);
  EXPECT_THROW((void)resolveParams(def, {{"delta", 0}}), re::Error);
  EXPECT_THROW((void)resolveParams(def, {{"nonsense", 1}}), re::Error);
  // Later ranges see earlier overrides: a = 5 is fine at delta = 6.
  EXPECT_EQ(resolveParams(def, {{"delta", 6}, {"a", 5}}).at("a"), 5);
}

TEST(FamilyDef, RequireDirectiveIsEnforced) {
  const FamilyDef def = parseFamilyText(
      "family t\n"
      "param delta range 2 .. 8 default 3\n"
      "param a range 0 .. delta default 1\n"
      "require 2 * a <= delta\n"
      "alphabet M P\n"
      "node M^delta\n"
      "edge M [M P]\n");
  EXPECT_EQ(resolveParams(def, {}).at("a"), 1);
  EXPECT_THROW((void)resolveParams(def, {{"a", 2}}), re::Error);
  EXPECT_EQ(resolveParams(def, {{"delta", 4}, {"a", 2}}).at("a"), 2);
}

TEST(FamilyDef, PiMatchesCoreConstructorBitForBit) {
  const FamilyDef def = *findBuiltin("pi");
  for (re::Count delta = 1; delta <= 6; ++delta) {
    for (re::Count a = 0; a <= delta; ++a) {
      for (re::Count x = 0; x <= delta; ++x) {
        const re::Problem dsl = instantiate(
            def, resolveParams(def, {{"delta", delta}, {"a", a}, {"x", x}}));
        const re::Problem hard = core::familyProblem(delta, a, x);
        EXPECT_EQ(dsl, hard) << "delta=" << delta << " a=" << a << " x=" << x;
      }
    }
  }
}

TEST(FamilyDef, PiMatchesCoreConstructorCanonically) {
  const FamilyDef def = *findBuiltin("pi");
  for (re::Count delta = 1; delta <= 4; ++delta) {
    for (re::Count a = 0; a <= delta; ++a) {
      for (re::Count x = 0; x <= delta; ++x) {
        const re::Problem dsl = instantiate(
            def, resolveParams(def, {{"delta", delta}, {"a", a}, {"x", x}}));
        const auto lhs = re::canonicalize(dsl);
        const auto rhs = re::canonicalize(core::familyProblem(delta, a, x));
        EXPECT_EQ(lhs.hash, rhs.hash);
        EXPECT_EQ(lhs.problem, rhs.problem);
      }
    }
  }
}

TEST(FamilyDef, TwoRulingSetInstantiatesToProbedEncoding) {
  const re::Problem p = instantiateWithDefaults(*findBuiltin("two_ruling_set"));
  const re::Problem expected = re::Problem::parse(
      "S^3\nP1 O1^2\nP2 O2^2", "S [P1 O1]\nO1 [O1 P2 O2]\nO2 O2");
  EXPECT_EQ(p, expected);
}

TEST(FamilyDef, MaximalMatchingInstantiatesToProbedEncoding) {
  const re::Problem p =
      instantiateWithDefaults(*findBuiltin("maximal_matching"));
  const re::Problem expected =
      re::Problem::parse("M O^2\nP^3", "M M\nO [O P]");
  EXPECT_EQ(p, expected);
}

TEST(FamilyDef, MaximalMatchingIsValidAtDeltaOne) {
  // The degree-1 instance (single-port matching) must instantiate: node
  // configurations M and P, edge constraint unchanged.
  const re::Problem p = instantiateWithDefaults(*findBuiltin("maximal_matching"),
                                                {{"delta", 1}});
  EXPECT_EQ(p.delta(), 1);
  EXPECT_EQ(p.node.size(), 2u);
  EXPECT_EQ(p.edge.size(), 2u);
}

TEST(FamilyDef, DeltaColoringExpandsParameterizedAlphabet) {
  const FamilyDef def = *findBuiltin("delta_coloring");
  for (re::Count delta = 3; delta <= 5; ++delta) {
    const re::Problem p =
        instantiate(def, resolveParams(def, {{"delta", delta}}));
    ASSERT_EQ(p.alphabet.size(), delta);
    EXPECT_EQ(p.alphabet.name(0), "C1");
    EXPECT_EQ(p.alphabet.name(static_cast<re::Label>(delta - 1)),
              "C" + std::to_string(delta));
    // One monochromatic node configuration per color; one edge
    // configuration per color, excluding the color itself.
    EXPECT_EQ(p.node.size(), static_cast<std::size_t>(delta));
    EXPECT_EQ(p.edge.size(), static_cast<std::size_t>(delta));
    for (const auto& config : p.edge.configurations()) {
      for (const auto& group : config.groups()) {
        EXPECT_LT(group.set.size(), delta);  // no self-color anywhere
      }
    }
  }
}

TEST(FamilyDef, InstantiationIsDeterministic) {
  for (const FamilyDef& def : builtinFamilies()) {
    const Env params = resolveParams(def, {});
    const re::Problem a = instantiate(def, params);
    const re::Problem b = instantiate(def, params);
    EXPECT_EQ(a, b) << def.name;
  }
}

TEST(FamilyDef, ZeroCountGroupsVanish) {
  const FamilyDef def = parseFamilyText(
      "family t\n"
      "param delta range 1 .. 4 default 1\n"
      "alphabet M X\n"
      "node M^delta X^(delta - 1)\n"
      "edge M [M X]\n");
  // delta = 1: the X group has exponent 0 and disappears, exactly like the
  // core constructor's Configuration normalization.
  const re::Problem p = instantiateWithDefaults(def);
  ASSERT_EQ(p.node.size(), 1u);
  EXPECT_EQ(p.node.configurations()[0].groups().size(), 1u);
}

TEST(FamilyDef, IllFormedExpansionsThrow) {
  // Negative exponent.
  const FamilyDef negative = parseFamilyText(
      "family t\nparam d range 1 .. 4 default 1\nalphabet M\n"
      "node M^(d - 2)\nedge M M\n");
  EXPECT_THROW((void)instantiateWithDefaults(negative), re::Error);

  // Unknown label reference.
  const FamilyDef unknown = parseFamilyText(
      "family t\nalphabet M\nnode Q^2\nedge M M\n");
  EXPECT_THROW((void)instantiateWithDefaults(unknown), re::Error);

  // Empty set comprehension with a positive exponent.
  const FamilyDef empty = parseFamilyText(
      "family t\nparam d range 2 .. 4 default 2\nalphabet C{i=1..d}\n"
      "node [C{j} | j=1..d if j > d]^d\nedge C{1} C{2}\n");
  EXPECT_THROW((void)instantiateWithDefaults(empty), re::Error);

  // Edge template of degree != 2.
  const FamilyDef degree = parseFamilyText(
      "family t\nalphabet M\nnode M^3\nedge M M M\n");
  EXPECT_THROW((void)instantiateWithDefaults(degree), re::Error);
}

TEST(FamilyDef, DuplicateLabelInAlphabetThrows) {
  const FamilyDef def = parseFamilyText(
      "family t\nparam d range 1 .. 4 default 2\n"
      "alphabet C1 C{i=1..d}\nnode C1^2\nedge C1 C1\n");
  EXPECT_THROW((void)instantiateWithDefaults(def), re::Error);
}

TEST(FamilyDef, PublishedBoundEvaluates) {
  const FamilyDef def = *findBuiltin("maximal_matching");
  const Env params = resolveParams(def, {});
  ASSERT_TRUE(publishedBound(def, params).has_value());
  EXPECT_EQ(*publishedBound(def, params), 3);

  const FamilyDef none = parseFamilyText(
      "family t\nalphabet M\nnode M^2\nedge M M\n");
  EXPECT_FALSE(publishedBound(none, {}).has_value());
}

}  // namespace
}  // namespace relb::family
