// Unit coverage for src/gen at its edges:
//
//   * randomProblem with fully degenerate ranges -- min == max == 1 for the
//     alphabet, the degree, and both config counts -- is valid and
//     deterministic (regression pin: single-label / degree-1 problems are a
//     deliberate edge case of the generator, and [1, 1] must stay an
//     accepted range, matching the requireRange contract lo >= 1, hi >= lo);
//   * randomFamilyParams draws inside the declared box, honors the delta
//     clamp, rejection-samples `require` clauses, and errors cleanly when
//     the clamp empties the range;
//   * randomFamilyProblem is deterministic in the seed and always
//     instantiates to a valid problem of the right degree.
#include <gtest/gtest.h>

#include <random>

#include "family/builtin.hpp"
#include "family/text.hpp"
#include "gen/family_sample.hpp"
#include "gen/random_problem.hpp"

namespace relb::gen {
namespace {

TEST(GenEdgeCases, FullyDegenerateRangesAreValid) {
  RandomProblemOptions options;
  options.minAlphabet = options.maxAlphabet = 1;
  options.minDelta = options.maxDelta = 1;
  options.minNodeConfigs = options.maxNodeConfigs = 1;
  options.minEdgeConfigs = options.maxEdgeConfigs = 1;
  std::mt19937 rng(7);
  const re::Problem p = randomProblem(rng, options);
  EXPECT_EQ(p.alphabet.size(), 1u);
  EXPECT_EQ(p.delta(), 1);
  EXPECT_EQ(p.node.size(), 1u);
  EXPECT_EQ(p.edge.size(), 1u);
  EXPECT_NO_THROW(p.validate());

  std::mt19937 replay(7);
  EXPECT_EQ(randomProblem(replay, options), p)
      << "degenerate draw is not deterministic";
}

TEST(GenEdgeCases, DegenerateDeltaOneMatchingShape) {
  // Delta = 1 is the matching-style corner: every node is one port.  The
  // generator must keep producing valid degree-1 node constraints.
  RandomProblemOptions options;
  options.minDelta = options.maxDelta = 1;
  std::mt19937 rng(11);
  for (int i = 0; i < 50; ++i) {
    const re::Problem p = randomProblem(rng, options);
    EXPECT_EQ(p.delta(), 1);
    EXPECT_NO_THROW(p.validate());
  }
}

TEST(GenEdgeCases, InvertedRangeStillThrows) {
  RandomProblemOptions options;
  options.minDelta = 3;
  options.maxDelta = 2;
  std::mt19937 rng(1);
  EXPECT_THROW((void)randomProblem(rng, options), re::Error);
}

TEST(FamilySample, ParamsLandInsideTheDeclaredBox) {
  const family::FamilyDef def = *family::findBuiltin("pi");
  FamilySampleOptions options;
  options.minDelta = 2;
  options.maxDelta = 5;
  std::mt19937 rng(23);
  for (int i = 0; i < 100; ++i) {
    const family::Env params = randomFamilyParams(rng, def, options);
    const re::Count delta = params.at("delta");
    EXPECT_GE(delta, 2);
    EXPECT_LE(delta, 5);
    EXPECT_GE(params.at("a"), 0);
    EXPECT_LE(params.at("a"), delta);
    EXPECT_GE(params.at("x"), 0);
    EXPECT_LE(params.at("x"), delta);
  }
}

TEST(FamilySample, DeltaClampCanEmptyTheRangeCleanly) {
  // delta_coloring declares delta in [3, 6]; clamping to [1, 2] leaves no
  // valid draw and must error rather than loop or return junk.
  const family::FamilyDef def = *family::findBuiltin("delta_coloring");
  FamilySampleOptions options;
  options.minDelta = 1;
  options.maxDelta = 2;
  std::mt19937 rng(3);
  EXPECT_THROW((void)randomFamilyParams(rng, def, options), re::Error);
}

TEST(FamilySample, RequireClausesAreRejectionSampled) {
  const family::FamilyDef def = family::parseFamilyText(
      "family even_only\n"
      "param n range 1 .. 8\n"
      "require n / 2 * 2 == n\n"
      "alphabet A B\n"
      "node A^n\n"
      "edge A B\n");
  std::mt19937 rng(5);
  for (int i = 0; i < 50; ++i) {
    const family::Env params = randomFamilyParams(rng, def, {});
    EXPECT_EQ(params.at("n") % 2, 0) << "require clause not enforced";
  }
}

TEST(FamilySample, ProblemsAreDeterministicAndValid) {
  for (const family::FamilyDef& def : family::builtinFamilies()) {
    FamilySampleOptions options;
    options.minDelta = 2;
    options.maxDelta = 4;
    std::mt19937 rng(41);
    const re::Problem p = randomFamilyProblem(rng, def, options);
    EXPECT_NO_THROW(p.validate()) << def.name;
    std::mt19937 replay(41);
    EXPECT_EQ(randomFamilyProblem(replay, def, options), p)
        << def.name << ": family sampling is not deterministic";
  }
}

}  // namespace
}  // namespace relb::gen
