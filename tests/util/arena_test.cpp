#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace relb::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena;
  int* a = arena.allocate<int>(10);
  int* b = arena.allocate<int>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  (void)arena.allocateBytes(1, 1);  // misalign the cursor
  for (const std::size_t align : {2, 8, 64, 256}) {
    void* p = arena.allocateBytes(align, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
}

TEST(Arena, RewindReusesMemoryInLifoOrder) {
  Arena arena;
  (void)arena.allocate<int>(4);
  const Arena::Mark m = arena.mark();
  int* first = arena.allocate<int>(8);
  arena.rewind(m);
  int* second = arena.allocate<int>(8);
  EXPECT_EQ(first, second);
}

TEST(Arena, ResetKeepsCapacity) {
  Arena arena(64);
  // Force several chunks.
  for (int i = 0; i < 10; ++i) (void)arena.allocate<std::uint64_t>(64);
  const std::size_t capacity = arena.capacityBytes();
  EXPECT_GT(capacity, 0u);
  arena.reset();
  EXPECT_EQ(arena.capacityBytes(), capacity);
  // A warmed arena services the same workload without growing.
  for (int i = 0; i < 10; ++i) (void)arena.allocate<std::uint64_t>(64);
  EXPECT_EQ(arena.capacityBytes(), capacity);
}

TEST(Arena, GrowsForOversizedRequests) {
  Arena arena(64);
  double* big = arena.allocate<double>(10'000);
  ASSERT_NE(big, nullptr);
  big[0] = 1.5;
  big[9'999] = 2.5;
  EXPECT_EQ(big[0], 1.5);
  EXPECT_EQ(big[9'999], 2.5);
  EXPECT_GE(arena.capacityBytes(), 10'000 * sizeof(double));
}

TEST(ArenaVector, PushBackPreservesContentsAcrossGrowth) {
  Arena arena;
  ArenaVector<std::uint32_t> v(arena);
  for (std::uint32_t i = 0; i < 1'000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1'000u);
  for (std::uint32_t i = 0; i < 1'000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(ArenaVector, AppendAndClear) {
  Arena arena;
  ArenaVector<int> v(arena, 4);
  std::vector<int> chunk(37);
  std::iota(chunk.begin(), chunk.end(), 0);
  v.append(chunk.data(), chunk.size());
  v.append(chunk.data(), chunk.size());
  ASSERT_EQ(v.size(), 74u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[36], 36);
  EXPECT_EQ(v[37], 0);
  EXPECT_EQ(v[73], 36);
  EXPECT_TRUE(std::equal(v.begin(), v.begin() + 37, chunk.begin()));
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
}

TEST(ArenaVector, AppendZeroFromNullIsANoop) {
  Arena arena;
  ArenaVector<int> v(arena);
  v.append(nullptr, 0);
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace relb::util
