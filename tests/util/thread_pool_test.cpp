// The thread-pool utility: width resolution, dynamic fan-out, ordered
// reduction, exception propagation, and safe nesting.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace relb::util {
namespace {

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolveThreadCount(0), 1);
  EXPECT_EQ(resolveThreadCount(1), 1);
  EXPECT_EQ(resolveThreadCount(7), 7);
  EXPECT_EQ(resolveThreadCount(-3), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(1000);
    parallel_for(threads, visits.size(),
                 [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, SlotWritesAreDeterministic) {
  // Results written into index-addressed slots are identical across widths.
  std::vector<std::vector<long>> results;
  for (const int threads : {1, 2, 8}) {
    std::vector<long> out(5000);
    parallel_for(threads, out.size(),
                 [&](std::size_t i) { out[i] = static_cast<long>(i * i % 97); });
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelFor, WidthBeyondHardwareConcurrencyWorks) {
  // Explicit widths are honored even on small machines (this is what lets
  // the engine determinism tests genuinely multithread on any box).
  std::atomic<long> sum{0};
  parallel_for(8, 10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
  EXPECT_GE(ThreadPool::global().concurrency(), 8);
}

TEST(ParallelFor, PropagatesFirstException) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        parallel_for(threads, 100,
                     [&](std::size_t i) {
                       if (i == 37) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A parallel_for issued from inside a pool task must not deadlock; it runs
  // inline on the worker.
  std::vector<std::atomic<int>> visits(64 * 16);
  parallel_for(4, 64, [&](std::size_t outer) {
    parallel_for(4, 16, [&](std::size_t inner) {
      visits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelReduce, CombinesChunksInOrder) {
  // Concatenation is order-sensitive; chunk-ordered combining must rebuild
  // the identity permutation for any width.
  std::vector<int> serial(1000);
  std::iota(serial.begin(), serial.end(), 0);
  for (const int threads : {1, 2, 8}) {
    const auto out = parallel_reduce(
        threads, serial.size(), std::vector<int>{},
        [](std::size_t begin, std::size_t end) {
          std::vector<int> part;
          for (std::size_t i = begin; i < end; ++i) {
            part.push_back(static_cast<int>(i));
          }
          return part;
        },
        [](std::vector<int> acc, std::vector<int> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
    EXPECT_EQ(out, serial) << "threads=" << threads;
  }
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const auto out = parallel_reduce(
      4, 0, 42, [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(out, 42);
}

TEST(ThreadPool, StandalonePoolRunsBatches) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 3);
  std::vector<std::atomic<int>> visits(100);
  for (int round = 0; round < 10; ++round) {
    pool.forEachIndex(visits.size(),
                      [&](std::size_t i) { visits[i].fetch_add(1); });
  }
  for (const auto& v : visits) EXPECT_EQ(v.load(), 10);
}

}  // namespace
}  // namespace relb::util
