#include "util/shutdown.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <poll.h>

#include "re/types.hpp"

namespace relb::util {
namespace {

bool readable(int fd) {
  pollfd p{fd, POLLIN, 0};
  return ::poll(&p, 1, 0) == 1 && (p.revents & POLLIN) != 0;
}

TEST(ShutdownSignal, TriggerSetsFlagAndWakesPollFd) {
  ShutdownSignal signal;
  EXPECT_FALSE(signal.requested());
  EXPECT_FALSE(readable(signal.pollFd()));
  signal.trigger();
  EXPECT_TRUE(signal.requested());
  EXPECT_TRUE(readable(signal.pollFd()));
  // Idempotent, and the pipe stays readable (it is never drained).
  signal.trigger();
  EXPECT_TRUE(readable(signal.pollFd()));
}

TEST(ShutdownSignal, RealSignalIsCaught) {
  ShutdownSignal signal;
  EXPECT_FALSE(signal.requested());
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_TRUE(signal.requested());
  EXPECT_TRUE(readable(signal.pollFd()));
}

TEST(ShutdownSignal, SingleInstanceRule) {
  ShutdownSignal first;
  EXPECT_EQ(ShutdownSignal::active(), &first);
  EXPECT_THROW({ ShutdownSignal second; }, re::Error);
  // The failed construction must not have unseated the active instance.
  EXPECT_EQ(ShutdownSignal::active(), &first);
}

TEST(ShutdownSignal, DestructorRestoresHandlersAndClearsActive) {
  {
    ShutdownSignal signal;
    EXPECT_NE(ShutdownSignal::active(), nullptr);
  }
  EXPECT_EQ(ShutdownSignal::active(), nullptr);
  // A fresh instance installs cleanly afterwards, with a reset flag.
  ShutdownSignal again;
  EXPECT_FALSE(again.requested());
  EXPECT_FALSE(readable(again.pollFd()));
}

TEST(ShutdownSignal, DrainRequestedNeedsBothGuardAndRequest) {
  EXPECT_FALSE(ShutdownSignal::drainRequested());  // no guard installed
  ShutdownSignal signal;
  EXPECT_FALSE(ShutdownSignal::drainRequested());  // guard, no request
  signal.trigger();
  EXPECT_TRUE(ShutdownSignal::drainRequested());
}

}  // namespace
}  // namespace relb::util
