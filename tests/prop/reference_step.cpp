#include "prop/reference_step.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

namespace relb::refimpl {

using re::Alphabet;
using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Group;
using re::Label;
using re::LabelSet;
using re::Problem;
using re::StepResult;
using re::Word;

std::vector<LabelSet> edgeCompatibility(const Constraint& edge,
                                        int alphabetSize) {
  if (edge.degree() != 2) throw Error("edgeCompatibility: degree != 2");
  std::vector<LabelSet> compat(static_cast<std::size_t>(alphabetSize));
  for (int a = 0; a < alphabetSize; ++a) {
    for (int b = a; b < alphabetSize; ++b) {
      Word w(static_cast<std::size_t>(alphabetSize), 0);
      ++w[static_cast<std::size_t>(a)];
      ++w[static_cast<std::size_t>(b)];
      if (edge.containsWord(w)) {
        compat[static_cast<std::size_t>(a)].insert(static_cast<Label>(b));
        compat[static_cast<std::size_t>(b)].insert(static_cast<Label>(a));
      }
    }
  }
  return compat;
}

re::StrengthRelation computeStrength(const Constraint& constraint,
                                     int alphabetSize, std::size_t limit) {
  const auto words = constraint.enumerateWords(alphabetSize, limit);
  const std::set<Word> wordSet(words.begin(), words.end());
  re::StrengthRelation rel(alphabetSize);
  for (int strong = 0; strong < alphabetSize; ++strong) {
    for (int weak = 0; weak < alphabetSize; ++weak) {
      if (strong == weak) continue;
      bool holds = true;
      for (const Word& w : words) {
        if (w[static_cast<std::size_t>(weak)] == 0) continue;
        Word replaced = w;
        --replaced[static_cast<std::size_t>(weak)];
        ++replaced[static_cast<std::size_t>(strong)];
        if (!wordSet.contains(replaced)) {
          holds = false;
          break;
        }
      }
      rel.set(static_cast<Label>(strong), static_cast<Label>(weak), holds);
    }
  }
  return rel;
}

std::vector<LabelSet> allRightClosedSets(const re::StrengthRelation& rel,
                                         LabelSet universe) {
  if (universe.size() > 20) {
    throw Error("allRightClosedSets: universe too large");
  }
  const auto labels = universe.toVector();
  std::vector<LabelSet> out;
  const std::uint32_t count = std::uint32_t{1} << labels.size();
  for (std::uint32_t mask = 1; mask < count; ++mask) {
    LabelSet s;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if ((mask >> i) & 1u) s.insert(labels[i]);
    }
    const LabelSet closure = rel.rightClosure(s);
    if ((closure & universe) == s && closure.subsetOf(universe)) {
      out.push_back(s);
    }
  }
  return out;
}

LabelSet selfCompatibleLabels(const Problem& p) {
  LabelSet out;
  for (int l = 0; l < p.alphabet.size(); ++l) {
    Word w(static_cast<std::size_t>(p.alphabet.size()), 0);
    w[static_cast<std::size_t>(l)] += 2;
    if (p.edge.containsWord(w)) out.insert(static_cast<Label>(l));
  }
  return out;
}

bool slotsRelaxTo(const std::vector<LabelSet>& a,
                  const std::vector<LabelSet>& b) {
  const int n = static_cast<int>(a.size());
  LabelSet unionA, unionB;
  for (const LabelSet s : a) unionA = unionA | s;
  for (const LabelSet s : b) unionB = unionB | s;
  if (!unionA.subsetOf(unionB)) return false;

  std::array<int, 16> matchOfB{};
  matchOfB.fill(-1);
  std::array<bool, 16> visited{};
  std::function<bool(int)> augment = [&](int i) -> bool {
    for (int j = 0; j < n; ++j) {
      if (visited[static_cast<std::size_t>(j)] ||
          !a[static_cast<std::size_t>(i)].subsetOf(
              b[static_cast<std::size_t>(j)])) {
        continue;
      }
      visited[static_cast<std::size_t>(j)] = true;
      if (matchOfB[static_cast<std::size_t>(j)] < 0 ||
          augment(matchOfB[static_cast<std::size_t>(j)])) {
        matchOfB[static_cast<std::size_t>(j)] = i;
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < n; ++i) {
    visited.fill(false);
    if (!augment(i)) return false;
  }
  return true;
}

namespace {

Alphabet freshAlphabet(const std::vector<LabelSet>& sets,
                       const Alphabet& oldAlphabet) {
  Alphabet fresh;
  for (LabelSet s : sets) {
    const auto labels = s.toVector();
    if (labels.size() == 1) {
      fresh.add(oldAlphabet.name(labels[0]));
      continue;
    }
    std::string name = "(";
    bool multiChar = false;
    for (Label l : labels) multiChar |= oldAlphabet.name(l).size() > 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0 && multiChar) name += ' ';
      name += oldAlphabet.name(labels[i]);
    }
    name += ')';
    fresh.add(std::move(name));
  }
  return fresh;
}

Constraint replaceConstraint(const Constraint& constraint,
                             const std::vector<LabelSet>& meaning) {
  Constraint out(constraint.degree(), {});
  for (const auto& c : constraint.configurations()) {
    bool realizable = true;
    auto mapped = c.mapSets([&](LabelSet oldSet) {
      LabelSet fresh;
      for (std::size_t n = 0; n < meaning.size(); ++n) {
        if (meaning[n].intersects(oldSet)) {
          fresh.insert(static_cast<Label>(n));
        }
      }
      if (fresh.empty()) {
        realizable = false;
        fresh.insert(0);  // placeholder; configuration is discarded
      }
      return fresh;
    });
    if (realizable) out.add(std::move(mapped));
  }
  return out;
}

// Serial maximal-pair computation: Galois closure over the full subset
// sweep, then a plain quadratic swapped-orientation domination filter (no
// signature buckets -- the buckets only prune, they never change the set).
std::vector<std::pair<LabelSet, LabelSet>> maximalEdgePairs(
    const std::vector<LabelSet>& compat, int alphabetSize) {
  if (alphabetSize > 20) {
    throw Error("maximalEdgePairs: alphabet too large to enumerate subsets");
  }
  using Pair = std::pair<LabelSet, LabelSet>;
  const auto partner = [&](LabelSet a) {
    LabelSet out = LabelSet::full(alphabetSize);
    forEachLabel(a, [&](Label l) { out = out & compat[l]; });
    return out;
  };
  const std::uint32_t count = std::uint32_t{1} << alphabetSize;
  std::vector<Pair> pairs;
  for (std::uint32_t m = 1; m < count; ++m) {
    const LabelSet a(m);
    const LabelSet b = partner(a);
    if (b.empty()) continue;
    const LabelSet closedA = partner(b);
    const auto p = std::minmax(closedA, b);
    pairs.emplace_back(p.first, p.second);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<char> dominated(pairs.size(), 0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = 0; j < pairs.size() && !dominated[i]; ++j) {
      if (j == i) continue;
      const Pair& p = pairs[i];
      const Pair& q = pairs[j];
      const bool straight =
          p.first.subsetOf(q.first) && p.second.subsetOf(q.second);
      const bool swapped =
          p.first.subsetOf(q.second) && p.second.subsetOf(q.first);
      if (straight || swapped) dominated[i] = 1;
    }
  }
  std::vector<Pair> maximal;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!dominated[i]) maximal.push_back(pairs[i]);
  }
  return maximal;
}

using PackedWord = std::uint64_t;

PackedWord packWord(const Word& w) {
  PackedWord packed = 0;
  for (std::size_t l = 0; l < w.size(); ++l) {
    packed |= static_cast<PackedWord>(w[l]) << (4 * l);
  }
  return packed;
}

bool dominatedBySome(PackedWord p, const std::vector<PackedWord>& words,
                     int alphabetSize) {
  for (const PackedWord w : words) {
    bool ok = true;
    for (int l = 0; l < alphabetSize; ++l) {
      if (((p >> (4 * l)) & 0xF) > ((w >> (4 * l)) & 0xF)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

Configuration slotsToConfiguration(const std::vector<LabelSet>& slots) {
  std::map<LabelSet, Count> counts;
  for (LabelSet s : slots) ++counts[s];
  std::vector<Group> groups;
  groups.reserve(counts.size());
  for (const auto& [set, count] : counts) groups.push_back({set, count});
  return Configuration(std::move(groups));
}

struct RbarEnumerator {
  const std::vector<LabelSet>& rcSets;
  const std::vector<PackedWord>& nodeWords;  // sorted
  const int alphabetSize;
  const Count delta;

  std::unordered_map<PackedWord, bool> completable;
  std::vector<LabelSet> slots;
  std::vector<std::vector<LabelSet>> valid;

  bool canComplete(PackedWord w) {
    const auto it = completable.find(w);
    if (it != completable.end()) return it->second;
    const bool result = dominatedBySome(w, nodeWords, alphabetSize);
    completable.emplace(w, result);
    return result;
  }

  void descend(std::size_t i, const std::vector<PackedWord>& level) {
    std::vector<PackedWord> next;
    next.reserve(level.size() * static_cast<std::size_t>(rcSets[i].size()));
    for (const PackedWord w : level) {
      forEachLabel(rcSets[i], [&](Label l) {
        next.push_back(w + (PackedWord{1} << (4 * l)));
      });
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    const bool viable = std::all_of(
        next.begin(), next.end(), [&](PackedWord w) { return canComplete(w); });
    if (!viable) return;
    slots.push_back(rcSets[i]);
    rec(i, next);
    slots.pop_back();
  }

  void rec(std::size_t minIdx, const std::vector<PackedWord>& level) {
    if (static_cast<Count>(slots.size()) == delta) {
      const bool all =
          std::all_of(level.begin(), level.end(), [&](PackedWord w) {
            return std::binary_search(nodeWords.begin(), nodeWords.end(), w);
          });
      if (all) valid.push_back(slots);
      return;
    }
    for (std::size_t i = minIdx; i < rcSets.size(); ++i) descend(i, level);
  }
};

}  // namespace

StepResult applyR(const Problem& p) {
  p.validate();
  const int n = p.alphabet.size();
  const auto compat = refimpl::edgeCompatibility(p.edge, n);
  const auto pairs = maximalEdgePairs(compat, n);
  if (pairs.empty()) {
    throw Error("applyR: empty edge constraint after maximization");
  }

  std::set<LabelSet> setsSeen;
  for (const auto& [a, b] : pairs) {
    setsSeen.insert(a);
    setsSeen.insert(b);
  }
  StepResult result;
  result.meaning.assign(setsSeen.begin(), setsSeen.end());
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it =
        std::lower_bound(result.meaning.begin(), result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint edge(2, {});
  for (const auto& [a, b] : pairs) {
    const Label la = freshLabelOf(a);
    const Label lb = freshLabelOf(b);
    if (la == lb) {
      edge.add(Configuration({{LabelSet{la}, 2}}));
    } else {
      edge.add(Configuration({{LabelSet{la}, 1}, {LabelSet{lb}, 1}}));
    }
  }
  result.problem.edge = std::move(edge);
  result.problem.node = replaceConstraint(p.node, result.meaning);
  result.problem.validate();
  return result;
}

StepResult applyRbar(const Problem& p, const re::StepOptions& options) {
  p.validate();
  const int n = p.alphabet.size();
  const Count delta = p.delta();
  if (delta > options.maxRbarDelta) {
    throw Error("applyRbar: node degree too large for exact maximization");
  }

  const auto rcSets = refimpl::allRightClosedSets(
      refimpl::computeStrength(p.node, n, options.enumerationLimit),
      p.alphabet.all());

  if (n > 16 || delta > 15) {
    throw Error("applyRbar: packed-word enumeration needs <= 16 labels and "
                "delta <= 15");
  }
  const auto nodeWordList = p.node.enumerateWords(n, options.enumerationLimit);
  std::vector<PackedWord> nodeWords;
  nodeWords.reserve(nodeWordList.size());
  for (const Word& w : nodeWordList) nodeWords.push_back(packWord(w));
  std::sort(nodeWords.begin(), nodeWords.end());

  RbarEnumerator enumerator{rcSets, nodeWords, n, delta, {}, {}, {}};
  enumerator.rec(0, {0});
  std::vector<std::vector<LabelSet>> valid = std::move(enumerator.valid);
  if (valid.empty()) {
    throw Error("applyRbar: node constraint empty after maximization");
  }

  // Plain quadratic antichain filter (strict domination under Definition 7);
  // the production signature buckets only prune comparisons.
  std::vector<char> dominated(valid.size(), 0);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (std::size_t j = 0; j < valid.size() && !dominated[i]; ++j) {
      if (j == i) continue;
      if (slotsRelaxTo(valid[i], valid[j]) && !slotsRelaxTo(valid[j], valid[i])) {
        dominated[i] = 1;
      }
    }
  }
  std::vector<Configuration> maximal;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (!dominated[i]) maximal.push_back(slotsToConfiguration(valid[i]));
  }
  std::sort(maximal.begin(), maximal.end());
  maximal.erase(std::unique(maximal.begin(), maximal.end()), maximal.end());

  std::set<LabelSet> setsSeen;
  for (const auto& c : maximal) {
    for (const auto& g : c.groups()) setsSeen.insert(g.set);
  }
  StepResult result;
  result.meaning.assign(setsSeen.begin(), setsSeen.end());
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it =
        std::lower_bound(result.meaning.begin(), result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint node(delta, {});
  for (const auto& c : maximal) {
    std::vector<Group> groups;
    for (const auto& g : c.groups()) {
      groups.push_back({LabelSet::single(freshLabelOf(g.set)), g.count});
    }
    node.add(Configuration(std::move(groups)));
  }
  result.problem.node = std::move(node);
  result.problem.edge = replaceConstraint(p.edge, result.meaning);
  result.problem.validate();
  return result;
}

}  // namespace relb::refimpl
