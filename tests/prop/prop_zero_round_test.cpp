// Differential oracles for the zero-round analyses, checked against actual
// 0-round executions on concrete graphs from src/local -- a fully
// independent implementation of the model semantics.
//
//   * Symmetric ports: zeroRoundSolvableSymmetricPorts must agree with a
//     brute-force sweep over ALL 0-round algorithms (all port -> label maps)
//     on the symmetric-port gadget of Lemmas 12/15.
//   * Adversarial ports: a positive verdict comes with a witness word; that
//     word, dealt out in arbitrary port order, must check out on random
//     shuffled trees (the model promises success against ANY ports).
//   * Model hierarchy: adversarial-ports solvability implies solvability in
//     both easier models (the symmetric family is one adversary choice; the
//     edge-input model only adds information).
#include <gtest/gtest.h>

#include <algorithm>

#include "local/graph.hpp"
#include "local/halfedge.hpp"
#include "prop/prop.hpp"
#include "re/zero_round.hpp"

namespace relb {
namespace {

// All 0-round algorithms on the symmetric-port family fix one label per
// port.  Enumerate them; the analytic verdict must match exactly.
bool bruteForceSymmetricSolvable(const re::Problem& p) {
  const int delta = static_cast<int>(p.delta());
  const int alphabet = p.alphabet.size();
  const local::Graph gadget = local::symmetricPortGadget(delta);
  std::vector<re::Label> portLabel(static_cast<std::size_t>(delta), 0);
  const auto run = [&]() {
    local::HalfEdgeLabeling labeling(gadget);
    for (local::NodeId v = 0; v < gadget.numNodes(); ++v) {
      for (local::Port q = 0; q < gadget.degree(v); ++q) {
        labeling.set(v, q, portLabel[static_cast<std::size_t>(q)]);
      }
    }
    return local::checkLabeling(gadget, p, labeling).ok();
  };
  const auto sweep = [&](const auto& self, int port) -> bool {
    if (port == delta) return run();
    for (int l = 0; l < alphabet; ++l) {
      portLabel[static_cast<std::size_t>(port)] = static_cast<re::Label>(l);
      if (self(self, port + 1)) return true;
    }
    return false;
  };
  return sweep(sweep, 0);
}

TEST(PropZeroRound, SymmetricVerdictMatchesBruteForceSimulation) {
  prop::forAllProblems(
      {.name = "zero-round-symmetric",
       .gen = {.maxAlphabet = 4, .maxDelta = 4},
       .baseSeed = 61000},
      [](const re::Problem& p, std::mt19937&) {
        const bool analytic = re::zeroRoundSolvableSymmetricPorts(p);
        const bool simulated = bruteForceSymmetricSolvable(p);
        if (analytic != simulated) {
          return std::string("analytic symmetric-ports verdict ") +
                 (analytic ? "solvable" : "unsolvable") +
                 " but brute-force simulation says the opposite";
        }
        return std::string{};
      });
}

TEST(PropZeroRound, AdversarialWitnessChecksOutOnShuffledTrees) {
  prop::forAllProblems(
      {.name = "zero-round-adversarial", .gen = {}, .baseSeed = 62000},
      [](const re::Problem& p, std::mt19937& rng) {
        const auto witness = re::zeroRoundAdversarialWitness(p);
        if (!witness) return std::string{};
        // Expand the witness multiset into a label list of length Delta.
        std::vector<re::Label> labels;
        for (std::size_t l = 0; l < witness->size(); ++l) {
          for (re::Count i = 0; i < (*witness)[l]; ++i) {
            labels.push_back(static_cast<re::Label>(l));
          }
        }
        auto g = local::randomTree(40, static_cast<int>(p.delta()), rng);
        g.shufflePorts(rng);
        local::HalfEdgeLabeling labeling(g);
        for (local::NodeId v = 0; v < g.numNodes(); ++v) {
          std::vector<re::Label> dealt = labels;
          std::shuffle(dealt.begin(), dealt.end(), rng);
          for (local::Port q = 0; q < g.degree(v); ++q) {
            labeling.set(v, q, dealt[static_cast<std::size_t>(q)]);
          }
        }
        const auto check = local::checkLabeling(g, p, labeling);
        if (!check.ok()) {
          return "adversarial witness fails on a shuffled tree: " +
                 (check.messages.empty() ? std::string("(no message)")
                                         : check.messages.front());
        }
        return std::string{};
      });
}

TEST(PropZeroRound, ModelHierarchyIsMonotone) {
  prop::forAllProblems(
      {.name = "zero-round-hierarchy", .gen = {}, .baseSeed = 63000},
      [](const re::Problem& p, std::mt19937&) {
        if (!re::zeroRoundSolvableAdversarialPorts(p)) return std::string{};
        if (!re::zeroRoundSolvableSymmetricPorts(p)) {
          return std::string(
              "adversarial-ports solvable but symmetric-ports unsolvable");
        }
        if (!re::zeroRoundSolvableWithEdgeInputs(p)) {
          return std::string(
              "adversarial-ports solvable but edge-input model unsolvable");
        }
        return std::string{};
      });
}

}  // namespace
}  // namespace relb
