// Serialization oracles: parse(serialize(P)) == P, strictly (same label
// names, same registration order, same condensed representation), for both
// the JSON and the header-pinned text formats, over random problems far
// outside the paper family the io tests pin by hand.
#include <gtest/gtest.h>

#include "prop/prop.hpp"

namespace relb {
namespace {

TEST(PropRoundtrip, TextFormatRoundTripsExactly) {
  prop::forAllProblems(
      {.name = "roundtrip-text", .gen = {}, .baseSeed = 11000},
      [](const re::Problem& p, std::mt19937&) {
        const std::string text = io::renderProblemText(p);
        const re::Problem back = io::parseProblemText(text);
        if (!(back == p)) {
          return "text round-trip changed the problem; re-rendered:\n" +
                 io::renderProblemText(back);
        }
        return std::string{};
      });
}

TEST(PropRoundtrip, JsonFormatRoundTripsExactly) {
  prop::forAllProblems(
      {.name = "roundtrip-json", .gen = {}, .baseSeed = 12000},
      [](const re::Problem& p, std::mt19937&) {
        const std::string dumped = io::problemToJson(p).dump();
        const re::Problem back = io::problemFromJson(io::Json::parse(dumped));
        if (!(back == p)) {
          return "JSON round-trip changed the problem; dump was:\n" + dumped;
        }
        return std::string{};
      });
}

TEST(PropRoundtrip, TextRoundTripSurvivesPostPasses) {
  // The post-passes produce the set shapes (right-closed, widened) the
  // condensation printer has to get right.
  prop::forAllProblems(
      {.name = "roundtrip-postpass",
       .gen = {.rightClosurePass = true, .relaxationPass = true},
       .baseSeed = 13000},
      [](const re::Problem& p, std::mt19937&) {
        if (!(io::parseProblemText(io::renderProblemText(p)) == p)) {
          return std::string("post-pass text round-trip changed the problem");
        }
        return std::string{};
      });
}

}  // namespace
}  // namespace relb
