// Differential oracles for the speedup operators.
//
//   * R and Rbar promise bit-identical results for every
//     StepOptions::numThreads; the suite compares serial against 2- and
//     8-lane runs (including agreement on *throwing*, since Rbar rejects
//     problems whose node constraint maximizes to nothing).
//   * The semantic round-elimination invariant on tiny instances: for
//     Delta = 3 problems, Pi is 1-round solvable on high-girth trees iff
//     Rbar(R(Pi)) is 0-round solvable (Brandt's speedup, checked against the
//     independent brute-force CSP in tree_verifier.hpp).
#include <gtest/gtest.h>

#include <optional>

#include "prop/prop.hpp"
#include "re/re_step.hpp"
#include "re/tree_verifier.hpp"

namespace relb {
namespace {

// Runs `fn()` capturing the thrown-Error outcome, so "both throw" and "both
// produce identical results" are comparable verdicts.
template <typename Fn>
std::optional<re::StepResult> tryStep(Fn&& fn) {
  try {
    return fn();
  } catch (const re::Error&) {
    return std::nullopt;
  }
}

std::string compareAcrossThreads(const re::Problem& p, bool rbarSide) {
  std::optional<re::StepResult> serial;
  for (const int threads : {1, 2, 8}) {
    re::StepOptions options;
    options.numThreads = threads;
    const auto result = tryStep([&] {
      return rbarSide ? re::applyRbar(p, options) : re::applyR(p, options);
    });
    if (threads == 1) {
      serial = result;
      continue;
    }
    if (result.has_value() != serial.has_value()) {
      return "numThreads=" + std::to_string(threads) +
             " disagrees with serial on throwing";
    }
    if (result &&
        !(result->problem == serial->problem &&
          result->meaning == serial->meaning)) {
      return "numThreads=" + std::to_string(threads) +
             " result differs from serial";
    }
  }
  return {};
}

TEST(PropStep, ApplyRIsThreadCountInvariant) {
  prop::forAllProblems(
      {.name = "step-r-threads", .gen = {}, .baseSeed = 31000},
      [](const re::Problem& p, std::mt19937&) {
        return compareAcrossThreads(p, /*rbarSide=*/false);
      });
}

TEST(PropStep, ApplyRbarIsThreadCountInvariant) {
  // Rbar runs on R's output, like in a real speedup step; R can blow the
  // alphabet up, so cap the Rbar input size to keep the suite fast.
  prop::forAllProblems(
      {.name = "step-rbar-threads",
       .gen = {.maxAlphabet = 4, .maxDelta = 3},
       .baseSeed = 32000},
      [](const re::Problem& p, std::mt19937&) {
        const auto r = tryStep([&] { return re::applyR(p); });
        if (!r || r->problem.alphabet.size() > 6) return std::string{};
        return compareAcrossThreads(r->problem, /*rbarSide=*/true);
      });
}

TEST(PropStep, SpeedupMatchesBruteForceTreeSolvability) {
  prop::forAllProblems(
      {.name = "step-semantics",
       .gen = {.minAlphabet = 2,
               .maxAlphabet = 3,
               .minDelta = 3,
               .maxDelta = 3,
               .maxNodeConfigs = 3,
               .maxEdgeConfigs = 3},
       .baseSeed = 33000},
      [](const re::Problem& p, std::mt19937&) {
        re::Problem sped;
        bool spedUnsolvable = false;
        try {
          sped = re::speedupStep(p);
        } catch (const re::Error&) {
          // Rbar maximized the node constraint to nothing: the speedup
          // claims Pi'' (and so Pi at T >= 1) is unsolvable.
          spedUnsolvable = true;
        }
        // Cases that exhaust the budget count as undecided and are skipped;
        // a small budget keeps the suite fast while still deciding the bulk
        // of the generated instances.
        constexpr long kBudget = 5'000;
        try {
          const bool oneRound = re::treeSolvable3(p, 1, kBudget);
          const bool zeroRound =
              spedUnsolvable ? false : re::treeSolvable3(sped, 0, kBudget);
          if (oneRound != zeroRound) {
            return std::string("treeSolvable3(p,1) = ") +
                   (oneRound ? "true" : "false") +
                   " but treeSolvable3(speedup(p),0) = " +
                   (zeroRound ? "true" : "false");
          }
        } catch (const re::Error&) {
          // Brute-force search budget exceeded: undecided, not a failure.
        }
        return std::string{};
      });
}

}  // namespace
}  // namespace relb
