// Pre-rewrite reference implementations of the R/Rbar hot paths, kept
// compilable under the property-test target only.
//
// The bit-parallel kernels in src/re (packed-word enumeration, SWAR
// domination, bitmask Kuhn matching, shape-based edge compatibility, the
// closure-table right-closed-set sweep) promise *bit-identical* results to
// the straightforward container-based implementations they replaced.  This
// header preserves those originals verbatim-in-spirit -- std::set / std::map
// / std::function and all -- as differential oracles; prop_kernels_test.cpp
// compares them against the production code across generated problems.
//
// Nothing here is optimized, and nothing here should ever be "improved" to
// match a production change: if the two sides diverge, the production side
// is wrong (or the semantics changed, in which case the reference must be
// re-derived from first principles, not patched to agree).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "re/diagram.hpp"
#include "re/re_step.hpp"

namespace relb::refimpl {

/// Word-based pairwise edge compatibility (the original of
/// re::edgeCompatibility): label b is compatible with a iff the edge
/// constraint contains the two-slot word {a, b}.
std::vector<re::LabelSet> edgeCompatibility(const re::Constraint& edge,
                                            int alphabetSize);

/// Enumeration-based strength relation (the original of re::computeStrength):
/// materializes the full word language into a std::set and tests every
/// weak -> strong substitution against it.
re::StrengthRelation computeStrength(const re::Constraint& constraint,
                                     int alphabetSize, std::size_t limit);

/// Subset sweep over the universe testing each candidate with
/// StrengthRelation::rightClosure (the original of
/// StrengthRelation::allRightClosedSets).
std::vector<re::LabelSet> allRightClosedSets(const re::StrengthRelation& rel,
                                             re::LabelSet universe);

/// Per-label containsWord probe (the original of re::selfCompatibleLabels).
re::LabelSet selfCompatibleLabels(const re::Problem& p);

/// Definition 7 on explicit slot vectors via std::function Kuhn matching
/// (the original of the bitmask kernels::slotsRelaxTo).
bool slotsRelaxTo(const std::vector<re::LabelSet>& a,
                  const std::vector<re::LabelSet>& b);

/// The full pre-rewrite R operator: word-probed compatibility, a serial
/// subset sweep for maximal pairs, std::set-ordered fresh alphabet.
re::StepResult applyR(const re::Problem& p);

/// The full pre-rewrite Rbar operator (serial): std::vector<LabelSet> slot
/// DFS with an unordered_map completability memo, linear-scan domination,
/// std::map run-length grouping, plain all-pairs antichain filter.
re::StepResult applyRbar(const re::Problem& p,
                         const re::StepOptions& options = {});

}  // namespace relb::refimpl
