// Persistence oracle: a DiskStepStore warmed by one context must hand a
// *fresh* context bit-identical results without recomputation -- over random
// problems, not just the paper chain the store tests pin.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>

#include "prop/prop.hpp"
#include "re/engine.hpp"
#include "store/step_store.hpp"

namespace relb {
namespace {

template <typename Fn>
std::optional<re::StepResult> tryStep(Fn&& fn) {
  try {
    return fn();
  } catch (const re::Error&) {
    return std::nullopt;
  }
}

TEST(PropStore, ColdAndWarmStoreRunsAgreeBitIdentically) {
  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "prop_store";
  std::filesystem::remove_all(root);

  int caseIdx = 0;
  prop::forAllProblems(
      {.name = "store-cold-warm", .gen = {}, .baseSeed = 51000},
      [&](const re::Problem& p, std::mt19937&) {
        // A fresh store per case: generated problems may repeat canonically,
        // and a repeat would turn the "cold" run into a store hit.
        auto store = std::make_shared<store::DiskStepStore>(
            root / std::to_string(caseIdx++));
        re::EngineContext cold;
        cold.attachStore(store);
        const auto written = tryStep([&] { return cold.applyR(p); });
        if (!written) return std::string{};  // R never throws in practice
        if (cold.stats().storeWrites == 0) {
          return std::string("cold run wrote nothing to the store");
        }

        re::EngineContext warm;
        warm.attachStore(store);
        const auto loaded = tryStep([&] { return warm.applyR(p); });
        if (!loaded) {
          return std::string("warm run threw where the cold run succeeded");
        }
        if (!(loaded->problem == written->problem &&
              loaded->meaning == written->meaning)) {
          return std::string("warm store result differs from cold");
        }
        const auto stats = warm.stats();
        if (stats.storeHits == 0 || stats.storeMisses != 0) {
          return "warm run recomputed: " + stats.describe();
        }
        return std::string{};
      });

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace relb
