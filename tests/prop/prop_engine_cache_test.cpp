// Cache-transparency oracles: an EngineContext must be invisible in the
// results -- cached (second call) and uncached (free function) computations
// of the same step are bit-identical, and zero-round verdicts agree between
// the memoized and the direct analyses.
#include <gtest/gtest.h>

#include <optional>

#include "prop/prop.hpp"
#include "re/engine.hpp"
#include "re/zero_round.hpp"

namespace relb {
namespace {

template <typename Fn>
std::optional<re::StepResult> tryStep(Fn&& fn) {
  try {
    return fn();
  } catch (const re::Error&) {
    return std::nullopt;
  }
}

std::string compareSteps(const std::optional<re::StepResult>& a,
                         const std::optional<re::StepResult>& b,
                         const char* what) {
  if (a.has_value() != b.has_value()) {
    return std::string(what) + ": throw/result disagreement";
  }
  if (a && !(a->problem == b->problem && a->meaning == b->meaning)) {
    return std::string(what) + ": results differ";
  }
  return {};
}

TEST(PropEngineCache, ContextAgreesWithFreeFunctionsAndItself) {
  prop::forAllProblems(
      {.name = "engine-cache-step", .gen = {}, .baseSeed = 41000},
      [](const re::Problem& p, std::mt19937&) {
        re::EngineContext ctx;
        const auto direct = tryStep([&] { return re::applyR(p); });
        const auto cold = tryStep([&] { return ctx.applyR(p); });
        const auto warm = tryStep([&] { return ctx.applyR(p); });
        if (auto msg = compareSteps(direct, cold, "cold vs free applyR");
            !msg.empty()) {
          return msg;
        }
        if (auto msg = compareSteps(cold, warm, "warm vs cold applyR");
            !msg.empty()) {
          return msg;
        }
        if (cold && ctx.stats().stepHits == 0) {
          return std::string("second applyR did not hit the step memo");
        }
        return std::string{};
      });
}

TEST(PropEngineCache, ZeroRoundVerdictsAgreeWithDirectAnalyses) {
  prop::forAllProblems(
      {.name = "engine-cache-zero-round", .gen = {}, .baseSeed = 42000},
      [](const re::Problem& p, std::mt19937&) {
        re::EngineContext ctx;
        struct Row {
          re::ZeroRoundMode mode;
          bool direct;
          const char* name;
        };
        const Row rows[] = {
            {re::ZeroRoundMode::kSymmetricPorts,
             re::zeroRoundSolvableSymmetricPorts(p), "symmetric"},
            {re::ZeroRoundMode::kAdversarialPorts,
             re::zeroRoundSolvableAdversarialPorts(p), "adversarial"},
            {re::ZeroRoundMode::kWithEdgeInputs,
             re::zeroRoundSolvableWithEdgeInputs(p), "edge-inputs"},
        };
        for (const Row& row : rows) {
          // Twice: the second lookup exercises the cache path.
          if (ctx.zeroRoundSolvable(p, row.mode) != row.direct ||
              ctx.zeroRoundSolvable(p, row.mode) != row.direct) {
            return std::string("cached ") + row.name +
                   " verdict differs from the direct analysis";
          }
        }
        return std::string{};
      });
}

}  // namespace
}  // namespace relb
