// Metamorphic oracles for canonicalization and interning: renaming labels by
// a random permutation (with fresh, unrelated names) must not change the
// canonical form or its hash, and the engine's intern table must land both
// versions on the same entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "prop/prop.hpp"
#include "re/canonical.hpp"
#include "re/engine.hpp"
#include "re/rename.hpp"

namespace relb {
namespace {

// A random label permutation of `p` with synthetic names "Q<i>", so neither
// the order nor the spelling of the input names can leak into the result.
re::Problem randomPermutation(const re::Problem& p, std::mt19937& rng) {
  std::vector<re::Label> map(static_cast<std::size_t>(p.alphabet.size()));
  std::iota(map.begin(), map.end(), re::Label{0});
  std::shuffle(map.begin(), map.end(), rng);
  std::vector<std::string> names(map.size());
  for (std::size_t old = 0; old < map.size(); ++old) {
    names[map[old]] = "Q" + std::to_string(map[old]);
  }
  return re::renameProblem(p, map, re::Alphabet(names));
}

TEST(PropCanonical, PermutationInvariance) {
  prop::forAllProblems(
      {.name = "canonical-permutation", .gen = {}, .baseSeed = 21000},
      [](const re::Problem& p, std::mt19937& rng) {
        const auto a = re::canonicalize(p);
        const auto b = re::canonicalize(randomPermutation(p, rng));
        if (a.hash != b.hash) {
          return std::string("canonical hashes differ across a permutation");
        }
        if (!(a.problem == b.problem)) {
          return std::string("canonical problems differ across a permutation");
        }
        return std::string{};
      });
}

TEST(PropCanonical, Idempotence) {
  prop::forAllProblems(
      {.name = "canonical-idempotent", .gen = {}, .baseSeed = 22000},
      [](const re::Problem& p, std::mt19937&) {
        const auto once = re::canonicalize(p);
        const auto twice = re::canonicalize(once.problem);
        if (!(twice.problem == once.problem) || twice.hash != once.hash) {
          return std::string("canonicalize is not idempotent");
        }
        return std::string{};
      });
}

TEST(PropCanonical, InternAgreesAcrossPermutations) {
  prop::forAllProblems(
      {.name = "canonical-intern", .gen = {}, .baseSeed = 23000},
      [](const re::Problem& p, std::mt19937& rng) {
        re::EngineContext ctx;
        const auto first = ctx.intern(p);
        const auto second = ctx.intern(randomPermutation(p, rng));
        if (first.alreadyInterned) {
          return std::string("fresh context claims the problem was interned");
        }
        if (!second.alreadyInterned || second.hash != first.hash) {
          return std::string(
              "permuted problem missed the intern entry of the original");
        }
        return std::string{};
      });
}

}  // namespace
}  // namespace relb
