// Generator self-checks: every drawn problem is valid and reproducible, and
// the post-passes really are relaxations (certified by the zero-round
// relabeling machinery, an independent checker).
#include <gtest/gtest.h>

#include "prop/prop.hpp"
#include "re/diagram.hpp"
#include "re/relax.hpp"

namespace relb {
namespace {

re::Problem regenerate(unsigned caseSeed, const gen::RandomProblemOptions& o) {
  std::mt19937 rng(caseSeed);
  return gen::randomProblem(rng, o);
}

TEST(PropGen, ProblemsAreValidAndDeterministic) {
  prop::CheckConfig config{.name = "gen-valid", .gen = {}, .baseSeed = 1000};
  prop::forAllProblems(config, [&](const re::Problem& p, std::mt19937&) {
    p.validate();  // throws on violation; the harness reports it
    if (p.delta() < config.gen.minDelta || p.delta() > config.gen.maxDelta) {
      return std::string("delta out of range");
    }
    if (p.alphabet.size() < config.gen.minAlphabet ||
        p.alphabet.size() > config.gen.maxAlphabet) {
      return std::string("alphabet size out of range");
    }
    return std::string{};
  });
  // Reproducibility of the whole pipeline: regenerating from the same case
  // seed yields a syntactically identical problem.
  const unsigned seed = testsupport::effectiveSeed(config.baseSeed);
  EXPECT_EQ(regenerate(seed, config.gen), regenerate(seed, config.gen));
}

TEST(PropGen, SingleLabelAndWideOptionsStayValid) {
  prop::CheckConfig config{.name = "gen-extremes",
                           .gen = {.minAlphabet = 1,
                                   .maxAlphabet = 7,
                                   .minDelta = 1,
                                   .maxDelta = 5,
                                   .maxNodeConfigs = 6,
                                   .maxEdgeConfigs = 6,
                                   .disjunctionDensity = 0.5,
                                   .condenseBias = 0.8},
                           .baseSeed = 2000};
  prop::forAllProblems(config, [](const re::Problem& p, std::mt19937&) {
    p.validate();
    return std::string{};
  });
}

TEST(PropGen, RandomRelaxationIsARelaxation) {
  prop::CheckConfig config{.name = "gen-relaxation", .gen = {}, .baseSeed = 3000};
  prop::forAllProblems(config, [](const re::Problem& p, std::mt19937& rng) {
    const re::Problem relaxed = gen::randomRelaxation(p, rng);
    std::vector<re::Label> identity;
    for (int l = 0; l < p.alphabet.size(); ++l) {
      identity.push_back(static_cast<re::Label>(l));
    }
    try {
      if (!re::isZeroRoundRelabeling(p, relaxed, identity)) {
        return std::string("identity relabeling into relaxation rejected");
      }
    } catch (const re::Error&) {
      // Inclusion undecidable within the enumeration limit: not a failure.
    }
    return std::string{};
  });
}

TEST(PropGen, RightClosurePassProducesRightClosedNodeSets) {
  prop::CheckConfig config{.name = "gen-right-closure",
                           .gen = {.rightClosurePass = true},
                           .baseSeed = 4000};
  prop::forAllProblems(config, [](const re::Problem& p, std::mt19937&) {
    const auto rel = re::computeStrength(p.edge, p.alphabet.size());
    for (const auto& c : p.node.configurations()) {
      for (const auto& g : c.groups()) {
        if (!rel.isRightClosed(g.set)) {
          return std::string("node group set not right-closed after pass");
        }
      }
    }
    return std::string{};
  });
}

}  // namespace
}  // namespace relb
