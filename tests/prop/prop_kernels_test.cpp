// Differential oracles for the bit-parallel hot-path kernels.
//
// Every kernel introduced by the flat-buffer rewrite of the R/Rbar sweep is
// compared against the container-based implementation it replaced
// (reference_step.hpp), on generated problems:
//
//   * packed word collection vs Constraint::enumerateWords (including
//     agreement on *throwing* under a tight enumeration limit);
//   * SWAR domination and the open-addressing completability memo vs the
//     nibble-loop linear scan;
//   * bitmask Kuhn matching (kernels::slotsRelaxTo) vs the std::function
//     version, cross-checked against Configuration::relaxesTo;
//   * shape-based edge compatibility and self-compatible labels vs the
//     containsWord probes;
//   * packed computeStrength and the closure-table right-closed-set sweep
//     vs the std::set<Word> originals;
//   * the full applyR / applyRbar operators vs the pre-rewrite pipeline,
//     at thread widths 1, 2 and 8 and with a caller-provided arena.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "prop/prop.hpp"
#include "prop/reference_step.hpp"
#include "re/bitkernels.hpp"
#include "re/packed_words.hpp"
#include "re/zero_round.hpp"
#include "util/arena.hpp"

namespace relb {
namespace {

namespace kernels = re::kernels;
using kernels::ExpandedWord;
using kernels::PackedWord;

template <typename T, typename Fn>
std::optional<T> tryOp(Fn&& fn) {
  try {
    return fn();
  } catch (const re::Error&) {
    return std::nullopt;
  }
}

std::string describeSets(const std::vector<re::LabelSet>& sets) {
  std::string out;
  for (const re::LabelSet s : sets) {
    out += std::to_string(s.bits());
    out += ' ';
  }
  return out;
}

TEST(PropKernels, PackedCollectionMatchesEnumerateWords) {
  prop::forAllProblems(
      {.name = "kernels-packed-words", .gen = {}, .baseSeed = 61000},
      [](const re::Problem& p, std::mt19937& rng) -> std::string {
        const int n = p.alphabet.size();
        // A tight limit half the time, so the throw path is exercised too.
        const std::size_t limit =
            (rng() % 2 == 0) ? 100'000 : 1 + rng() % 8;
        for (const re::Constraint* c : {&p.node, &p.edge}) {
          const auto reference = tryOp<std::vector<PackedWord>>([&] {
            std::vector<PackedWord> packed;
            for (const re::Word& w : c->enumerateWords(n, limit)) {
              PackedWord acc = 0;
              for (std::size_t l = 0; l < w.size(); ++l) {
                acc |= static_cast<PackedWord>(w[l]) << (4 * l);
              }
              packed.push_back(acc);
            }
            std::sort(packed.begin(), packed.end());
            return packed;
          });
          const auto actual = tryOp<std::vector<PackedWord>>(
              [&] { return kernels::collectPackedWords(*c, n, limit); });
          if (reference.has_value() != actual.has_value()) {
            return "collectPackedWords throw disagreement at limit " +
                   std::to_string(limit);
          }
          if (reference && *reference != *actual) {
            return "collectPackedWords word-set mismatch at limit " +
                   std::to_string(limit);
          }
        }
        return {};
      });
}

TEST(PropKernels, SwarDominationAndMemoMatchLinearScan) {
  prop::forAllProblems(
      {.name = "kernels-domination", .gen = {}, .baseSeed = 62000},
      [](const re::Problem& p, std::mt19937& rng) -> std::string {
        const int n = p.alphabet.size();
        const auto words =
            kernels::collectPackedWords(p.node, n, 100'000);
        std::vector<ExpandedWord> expanded;
        expanded.reserve(words.size());
        for (const PackedWord w : words) {
          expanded.push_back(kernels::expandWord(w));
        }
        // Probes: prefixes of allowed words (knock random slots out) plus
        // random perturbations, covering both verdicts.
        util::Arena arena;
        kernels::CompletabilityMemo memo(arena);
        for (int probeIdx = 0; probeIdx < 32; ++probeIdx) {
          PackedWord probe = words[rng() % words.size()];
          for (int knock = 0; knock < 3; ++knock) {
            const int l = static_cast<int>(rng() % static_cast<unsigned>(n));
            const PackedWord count = (probe >> (4 * l)) & 0xF;
            if (count > 0 && rng() % 2 == 0) {
              probe -= PackedWord{1} << (4 * l);
            } else if (rng() % 4 == 0 && count < 15) {
              probe += PackedWord{1} << (4 * l);
            }
          }
          bool reference = false;
          for (const PackedWord w : words) {
            bool ok = true;
            for (int l = 0; l < n; ++l) {
              if (((probe >> (4 * l)) & 0xF) > ((w >> (4 * l)) & 0xF)) {
                ok = false;
                break;
              }
            }
            if (ok) {
              reference = true;
              break;
            }
          }
          const bool actual = kernels::dominatedBySome(
              kernels::expandWord(probe), expanded.data(), expanded.size());
          if (actual != reference) {
            return "dominatedBySome mismatch on probe " +
                   std::to_string(probe);
          }
          // The memo must return the computed verdict on first call and the
          // cached one (without recomputing) on the second.
          int computeCalls = 0;
          const auto compute = [&] {
            ++computeCalls;
            return kernels::dominatedBySome(kernels::expandWord(probe),
                                            expanded.data(), expanded.size());
          };
          const bool first = memo.getOrCompute(probe, compute);
          const bool second = memo.getOrCompute(probe, compute);
          if (first != reference || second != reference || computeCalls > 1) {
            return "CompletabilityMemo mismatch on probe " +
                   std::to_string(probe);
          }
        }
        return {};
      });
}

TEST(PropKernels, BitmaskMatchingMatchesReferenceAndRelaxesTo) {
  prop::forAllProblems(
      {.name = "kernels-slots-relax", .gen = {}, .baseSeed = 63000},
      [](const re::Problem& p, std::mt19937& rng) -> std::string {
        const int n = p.alphabet.size();
        const auto rel =
            refimpl::computeStrength(p.node, n, 100'000);
        const auto rcSets = refimpl::allRightClosedSets(rel, p.alphabet.all());
        if (rcSets.empty()) return {};
        for (int trial = 0; trial < 24; ++trial) {
          const int len = 1 + static_cast<int>(rng() % 4);
          std::vector<re::LabelSet> a, b;
          std::vector<std::uint32_t> aBits, bBits;
          for (int i = 0; i < len; ++i) {
            a.push_back(rcSets[rng() % rcSets.size()]);
            b.push_back(rcSets[rng() % rcSets.size()]);
            aBits.push_back(a.back().bits());
            bBits.push_back(b.back().bits());
          }
          const bool reference = refimpl::slotsRelaxTo(a, b);
          const bool actual =
              kernels::slotsRelaxTo(aBits.data(), bBits.data(), len);
          if (actual != reference) {
            return "slotsRelaxTo mismatch: a = " + describeSets(a) +
                   "b = " + describeSets(b);
          }
          // Definition 7 equals Configuration::relaxesTo on the slot
          // encoding; cross-check against the flow-based implementation.
          std::vector<re::Group> ga, gb;
          for (const re::LabelSet s : a) ga.push_back({s, 1});
          for (const re::LabelSet s : b) gb.push_back({s, 1});
          const bool flow = re::Configuration(std::move(ga))
                                .relaxesTo(re::Configuration(std::move(gb)));
          if (flow != reference) {
            return "slotsRelaxTo disagrees with Configuration::relaxesTo: "
                   "a = " + describeSets(a) + "b = " + describeSets(b);
          }
        }
        return {};
      });
}

TEST(PropKernels, ShapeBasedEdgeAnalysisMatchesWordProbes) {
  prop::forAllProblems(
      {.name = "kernels-edge-compat", .gen = {}, .baseSeed = 64000},
      [](const re::Problem& p, std::mt19937&) -> std::string {
        const int n = p.alphabet.size();
        const auto reference = refimpl::edgeCompatibility(p.edge, n);
        const auto actual = re::edgeCompatibility(p.edge, n);
        if (actual != reference) return "edgeCompatibility mismatch";
        const re::LabelSet refSelf = refimpl::selfCompatibleLabels(p);
        if (re::selfCompatibleLabels(p) != refSelf) {
          return "selfCompatibleLabels mismatch";
        }
        for (int l = 0; l < n; ++l) {
          if (re::selfCompatible(p, static_cast<re::Label>(l)) !=
              refSelf.contains(static_cast<re::Label>(l))) {
            return "selfCompatible mismatch at label " + std::to_string(l);
          }
        }
        return {};
      });
}

TEST(PropKernels, PackedStrengthMatchesEnumerationReference) {
  prop::forAllProblems(
      {.name = "kernels-strength", .gen = {}, .baseSeed = 65000},
      [](const re::Problem& p, std::mt19937&) -> std::string {
        const int n = p.alphabet.size();
        for (const re::Constraint* c : {&p.node, &p.edge}) {
          const auto reference = refimpl::computeStrength(*c, n, 100'000);
          const auto actual = re::computeStrength(*c, n, 100'000);
          for (int s = 0; s < n; ++s) {
            for (int w = 0; w < n; ++w) {
              if (actual.atLeastAsStrong(static_cast<re::Label>(s),
                                         static_cast<re::Label>(w)) !=
                  reference.atLeastAsStrong(static_cast<re::Label>(s),
                                            static_cast<re::Label>(w))) {
                return "computeStrength mismatch at (" + std::to_string(s) +
                       ", " + std::to_string(w) + ")";
              }
            }
          }
          const auto refSets =
              refimpl::allRightClosedSets(reference, p.alphabet.all());
          if (actual.allRightClosedSets(p.alphabet.all()) != refSets) {
            return "allRightClosedSets mismatch";
          }
        }
        return {};
      });
}

TEST(PropKernels, ApplyRMatchesPreRewritePipeline) {
  prop::forAllProblems(
      {.name = "kernels-apply-r", .gen = {}, .baseSeed = 66000},
      [](const re::Problem& p, std::mt19937&) -> std::string {
        const auto reference =
            tryOp<re::StepResult>([&] { return refimpl::applyR(p); });
        for (const int threads : {1, 2, 8}) {
          re::StepOptions options;
          options.numThreads = threads;
          const auto actual =
              tryOp<re::StepResult>([&] { return re::applyR(p, options); });
          if (actual.has_value() != reference.has_value()) {
            return "applyR throw disagreement at numThreads=" +
                   std::to_string(threads);
          }
          if (actual && !(actual->problem == reference->problem &&
                          actual->meaning == reference->meaning)) {
            return "applyR result differs from reference at numThreads=" +
                   std::to_string(threads);
          }
        }
        return {};
      });
}

TEST(PropKernels, ApplyRbarMatchesPreRewritePipeline) {
  // Rbar runs on R's output, like in a real speedup step; cap the input
  // size the same way prop_step_test does to keep the suite fast.
  prop::forAllProblems(
      {.name = "kernels-apply-rbar",
       .gen = {.maxAlphabet = 4, .maxDelta = 3},
       .baseSeed = 67000},
      [](const re::Problem& p, std::mt19937&) -> std::string {
        const auto input =
            tryOp<re::StepResult>([&] { return re::applyR(p); });
        if (!input || input->problem.alphabet.size() > 6) return {};
        const re::Problem& q = input->problem;
        const auto reference =
            tryOp<re::StepResult>([&] { return refimpl::applyRbar(q); });
        util::Arena callerArena;
        for (const int threads : {1, 2, 8}) {
          // With an external arena on the serial lane, and without.
          for (const bool external : {false, true}) {
            if (external && threads != 1) continue;
            re::StepOptions options;
            options.numThreads = threads;
            options.arena = external ? &callerArena : nullptr;
            const auto actual = tryOp<re::StepResult>(
                [&] { return re::applyRbar(q, options); });
            if (actual.has_value() != reference.has_value()) {
              return "applyRbar throw disagreement at numThreads=" +
                     std::to_string(threads);
            }
            if (actual && !(actual->problem == reference->problem &&
                            actual->meaning == reference->meaning)) {
              return "applyRbar result differs from reference at "
                     "numThreads=" + std::to_string(threads) +
                     (external ? " (external arena)" : "");
            }
          }
        }
        return {};
      });
}

}  // namespace
}  // namespace relb
