// Lightweight property-based testing harness (no external dependencies).
//
// forAllProblems(config, property) draws `iterations` random problems from
// gen::randomProblem and checks `property` on each.  A property returns an
// empty string on success or a human-readable failure description; a thrown
// exception counts as a failure with the exception text.  On the first
// failing case the harness
//
//   1. *shrinks* the problem by greedily deleting configurations (node and
//      edge) while the property still fails, so the report shows a minimal
//      reproducer, not a 4-configuration monster;
//   2. reports the case seed, the iteration index, the reproduction recipe
//      (RELB_TEST_SEED=<offset>), and the shrunk problem's text form through
//      ADD_FAILURE;
//   3. writes the shrunk problem to prop_failures/<suite>-<case>.txt (under
//      the test's working directory) so CI can upload failing cases as
//      artifacts.
//
// Knobs (both read per check, so a single binary invocation honors them):
//   RELB_TEST_SEED   shifts every case seed (default 0: fixed historical
//                    seeds, fully deterministic);
//   RELB_PROP_ITERS  overrides the iteration count (nightly runs set it to
//                    10-50x the default).
//
// The harness is gtest-native on purpose: properties use the full assertion
// vocabulary of the surrounding test if they want to, but the common path is
// "return a message"; the harness owns reporting and shrinking.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <string>

#include "gen/random_problem.hpp"
#include "io/serialize.hpp"
#include "support/env_seed.hpp"

namespace relb::prop {

/// A property under test: empty string = pass, otherwise a description of
/// what went wrong.  The RNG is the per-case generator (already advanced
/// past problem generation); properties use it for auxiliary draws (label
/// permutations, thread-count picks, port shuffles).
using Property =
    std::function<std::string(const re::Problem&, std::mt19937&)>;

struct CheckConfig {
  /// Suite name: names the failure artifact and the report lines.
  std::string name;
  /// Generator shape for this suite's cases.
  gen::RandomProblemOptions gen;
  /// Default iteration count; RELB_PROP_ITERS overrides.
  int iterations = 200;
  /// Base seed: case i uses effectiveSeed(baseSeed + i).
  unsigned baseSeed = 1;
};

inline int envIterations(int fallback) {
  const char* raw = std::getenv("RELB_PROP_ITERS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1) {
    ADD_FAILURE() << "RELB_PROP_ITERS is not a positive number: '" << raw
                  << "'";
    return fallback;
  }
  return static_cast<int>(value);
}

namespace detail {

/// Runs the property, translating exceptions into failure messages (a
/// property oracle must never crash the harness; "threw" is a verdict).
inline std::string runProperty(const Property& property, const re::Problem& p,
                               unsigned caseSeed) {
  // A fresh RNG stream per attempt so shrunk re-runs see the same auxiliary
  // draws as the original failing run (mixed with a distinct constant so the
  // stream is independent of the generator's).
  std::mt19937 aux(caseSeed ^ 0x9e3779b9u);
  try {
    return property(p, aux);
  } catch (const std::exception& e) {
    return std::string("property threw: ") + e.what();
  }
}

/// Greedy 1-deletion shrinking: repeatedly drop a single node or edge
/// configuration (keeping each constraint non-empty) while the property
/// still fails.  Terminates because every accepted step removes one
/// configuration.
inline re::Problem shrink(const Property& property, re::Problem p,
                          unsigned caseSeed) {
  bool improved = true;
  while (improved) {
    improved = false;
    const auto tryDelete = [&](bool fromNode) {
      const re::Constraint& c = fromNode ? p.node : p.edge;
      if (c.size() <= 1) return false;
      for (std::size_t drop = 0; drop < c.size(); ++drop) {
        std::vector<re::Configuration> kept;
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (i != drop) kept.push_back(c.configurations()[i]);
        }
        re::Problem candidate = p;
        (fromNode ? candidate.node : candidate.edge) =
            re::Constraint(c.degree(), std::move(kept));
        if (!runProperty(property, candidate, caseSeed).empty()) {
          p = std::move(candidate);
          return true;
        }
      }
      return false;
    };
    if (tryDelete(true) || tryDelete(false)) improved = true;
  }
  return p;
}

inline void writeFailureArtifact(const std::string& suite, int caseIndex,
                                 unsigned caseSeed, const re::Problem& shrunk,
                                 const std::string& message) {
  std::error_code ec;
  std::filesystem::create_directories("prop_failures", ec);
  if (ec) return;  // reporting still happens through gtest
  std::ofstream out("prop_failures/" + suite + "-case" +
                    std::to_string(caseIndex) + ".txt");
  out << "suite: " << suite << "\ncase: " << caseIndex
      << "\nseed: " << caseSeed
      << "\nRELB_TEST_SEED offset: " << testsupport::envSeedOffset()
      << "\nfailure: " << message << "\n\n"
      << io::renderProblemText(shrunk);
}

}  // namespace detail

/// Checks `property` on `config.iterations` random problems.  Reports (and
/// shrinks) every failing case; the surrounding gtest test fails iff any
/// case fails.
inline void forAllProblems(const CheckConfig& config,
                           const Property& property) {
  const int iterations = envIterations(config.iterations);
  int failures = 0;
  for (int i = 0; i < iterations && failures < 3; ++i) {
    const unsigned caseSeed =
        testsupport::effectiveSeed(config.baseSeed + static_cast<unsigned>(i));
    std::mt19937 rng(caseSeed);
    re::Problem p;
    try {
      p = gen::randomProblem(rng, config.gen);
    } catch (const std::exception& e) {
      ADD_FAILURE() << config.name << ": generator failed at case " << i
                    << " (seed " << caseSeed << "): " << e.what();
      ++failures;
      continue;
    }
    const std::string message = detail::runProperty(property, p, caseSeed);
    if (message.empty()) continue;
    ++failures;
    const re::Problem shrunk = detail::shrink(property, p, caseSeed);
    const std::string shrunkMessage =
        detail::runProperty(property, shrunk, caseSeed);
    detail::writeFailureArtifact(config.name, i, caseSeed, shrunk,
                                 shrunkMessage);
    ADD_FAILURE() << config.name << ": case " << i << " failed (seed "
                  << caseSeed << ", reproduce with RELB_TEST_SEED="
                  << testsupport::envSeedOffset() << ")\n"
                  << "failure: " << shrunkMessage << "\n"
                  << "shrunk problem:\n"
                  << io::renderProblemText(shrunk);
  }
}

}  // namespace relb::prop
