// Property suite for the family-definition DSL (src/family) and its
// sampling front-end (gen/family_sample):
//
//   * random structurally-valid definitions round-trip through
//     renderFamilyText / parseFamilyText, and the canonical serialization
//     is a fixpoint;
//   * instantiation is deterministic, including across a text round-trip of
//     the definition;
//   * the DSL transcription of Pi_Delta(a, x) canonicalizes identically to
//     core::familyProblem over the full (a, x, Delta <= 7) grid;
//   * one R / Rbar step on DSL-instantiated problems is bit-identical at
//     thread widths 1, 2, and 8 (independent engine cores, so the engine
//     cannot serve one width's answer to another from cache).
//
// The suites follow tests/prop conventions: fixed per-case seeds shifted by
// RELB_TEST_SEED, iteration counts scaled by RELB_PROP_ITERS, >= 200 cases
// per oracle at the defaults.  The random-definition generator here feeds
// the parser arc; problem-shaped oracles draw real instantiations through
// gen::randomFamilyProblem instead of gen::randomProblem, so the cases have
// the *structure* of published families rather than white noise.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/family.hpp"
#include "family/builtin.hpp"
#include "family/text.hpp"
#include "gen/family_sample.hpp"
#include "prop.hpp"
#include "re/canonical.hpp"
#include "re/engine.hpp"

namespace relb::prop {
namespace {

using family::Cond;
using family::Expr;
using family::FamilyDef;

// ---------------------------------------------------------------------------
// Random definition generator (structural validity by construction: distinct
// parameter names, comprehension variables disjoint from parameters,
// non-empty alphabet and constraint templates).

const std::vector<std::string>& paramPool() {
  static const std::vector<std::string> pool{"delta", "a", "x", "k", "m"};
  return pool;
}

Expr randomExpr(std::mt19937& rng, const std::vector<std::string>& vars,
                int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 0 ? 6 : 1);
  switch (kind(rng)) {
    case 0: {
      std::uniform_int_distribution<int> value(0, 9);
      return Expr::integer(value(rng));
    }
    case 1: {
      if (vars.empty()) return Expr::integer(1);
      std::uniform_int_distribution<std::size_t> pick(0, vars.size() - 1);
      return Expr::variable(vars[pick(rng)]);
    }
    default: {
      Expr e;
      std::uniform_int_distribution<int> op(0, 4);
      switch (op(rng)) {
        case 0: e.kind = Expr::Kind::kAdd; break;
        case 1: e.kind = Expr::Kind::kSub; break;
        case 2: e.kind = Expr::Kind::kMul; break;
        case 3: e.kind = Expr::Kind::kDiv; break;
        default: e.kind = Expr::Kind::kNeg; break;
      }
      e.args.push_back(randomExpr(rng, vars, depth - 1));
      if (e.kind != Expr::Kind::kNeg) {
        e.args.push_back(randomExpr(rng, vars, depth - 1));
      }
      return e;
    }
  }
}

Cond randomCond(std::mt19937& rng, const std::vector<std::string>& vars) {
  static const std::vector<std::string> ops{"==", "!=", "<=", ">=", "<", ">"};
  Cond cond;
  std::uniform_int_distribution<int> terms(1, 2);
  const int n = terms(rng);
  for (int i = 0; i < n; ++i) {
    Cond::Cmp cmp;
    cmp.lhs = randomExpr(rng, vars, 1);
    std::uniform_int_distribution<std::size_t> pick(0, ops.size() - 1);
    cmp.op = ops[pick(rng)];
    cmp.rhs = randomExpr(rng, vars, 1);
    cond.terms.push_back(std::move(cmp));
  }
  return cond;
}

family::LabelRef randomRef(std::mt19937& rng, const FamilyDef& def,
                           const std::vector<std::string>& vars) {
  std::uniform_int_distribution<std::size_t> pick(0, def.alphabet.size() - 1);
  const family::AlphabetItem& item = def.alphabet[pick(rng)];
  family::LabelRef ref;
  ref.name = item.name;
  if (item.comprehension) {
    ref.indexed = true;
    ref.index = randomExpr(rng, vars, 1);
  }
  return ref;
}

family::SetAtom randomAtom(std::mt19937& rng, const FamilyDef& def,
                           const std::vector<std::string>& vars) {
  family::SetAtom atom;
  std::uniform_int_distribution<int> shape(0, 3);
  switch (shape(rng)) {
    case 0:  // single reference
      atom.refs.push_back(randomRef(rng, def, vars));
      break;
    case 1: {  // explicit set
      std::uniform_int_distribution<int> width(1, 3);
      const int n = width(rng);
      for (int i = 0; i < n; ++i) atom.refs.push_back(randomRef(rng, def, vars));
      break;
    }
    default: {  // set comprehension over an indexed label
      family::LabelRef ref;
      ref.name = def.alphabet.back().name;
      ref.indexed = true;
      atom.comprehension = true;
      atom.var = "j";
      std::vector<std::string> inner = vars;
      inner.push_back(atom.var);
      ref.index = Expr::variable(atom.var);
      atom.refs.push_back(std::move(ref));
      atom.lo = randomExpr(rng, vars, 1);
      atom.hi = randomExpr(rng, vars, 1);
      std::bernoulli_distribution guarded(0.5);
      if (guarded(rng)) atom.cond = randomCond(rng, inner);
      break;
    }
  }
  return atom;
}

family::ConfigTemplate randomTemplate(std::mt19937& rng, const FamilyDef& def,
                                      std::vector<std::string> vars) {
  family::ConfigTemplate tmpl;
  std::bernoulli_distribution comprehend(0.3);
  if (comprehend(rng)) {
    tmpl.comprehension = true;
    tmpl.var = "i";
    tmpl.lo = randomExpr(rng, vars, 1);
    tmpl.hi = randomExpr(rng, vars, 1);
    std::bernoulli_distribution guarded(0.3);
    if (guarded(rng)) tmpl.cond = randomCond(rng, vars);
    vars.push_back(tmpl.var);
  }
  std::uniform_int_distribution<int> groups(1, 3);
  const int n = groups(rng);
  for (int g = 0; g < n; ++g) {
    family::GroupTemplate group;
    group.atom = randomAtom(rng, def, vars);
    std::uniform_int_distribution<int> countShape(0, 2);
    switch (countShape(rng)) {
      case 0: group.count = Expr::integer(1); break;
      case 1: group.count = randomExpr(rng, vars, 0); break;
      default: group.count = randomExpr(rng, vars, 2); break;
    }
    tmpl.groups.push_back(std::move(group));
  }
  return tmpl;
}

FamilyDef randomDef(std::mt19937& rng) {
  FamilyDef def;
  def.name = "prop_family";
  std::bernoulli_distribution coin(0.5);
  if (coin(rng)) def.title = "randomized definition under test";
  if (coin(rng)) def.model = "det-PN high-girth";
  if (coin(rng)) def.cite = "tests/prop";

  std::uniform_int_distribution<int> paramCount(1, 3);
  const int params = paramCount(rng);
  std::vector<std::string> vars;
  for (int i = 0; i < params; ++i) {
    family::ParamDecl decl;
    decl.name = paramPool()[static_cast<std::size_t>(i)];
    decl.lo = randomExpr(rng, vars, 1);
    decl.hi = randomExpr(rng, vars, 1);
    if (coin(rng)) decl.defaultValue = randomExpr(rng, vars, 1);
    vars.push_back(decl.name);
    def.params.push_back(std::move(decl));
  }
  if (coin(rng)) def.requirements.push_back(randomCond(rng, vars));
  if (coin(rng)) def.bound = randomExpr(rng, vars, 1);

  static const std::vector<std::string> labelNames{"A", "B", "C", "D"};
  std::uniform_int_distribution<int> alphaCount(1, 3);
  const int plain = alphaCount(rng);
  for (int i = 0; i < plain; ++i) {
    family::AlphabetItem item;
    item.name = labelNames[static_cast<std::size_t>(i)];
    def.alphabet.push_back(std::move(item));
  }
  {
    // Always end with one indexed comprehension so randomAtom's set
    // comprehensions have an indexed label to range over.
    family::AlphabetItem item;
    item.name = "Z";
    item.comprehension = true;
    item.var = "i";
    item.lo = randomExpr(rng, vars, 1);
    item.hi = randomExpr(rng, vars, 1);
    if (coin(rng)) {
      std::vector<std::string> inner = vars;
      inner.push_back(item.var);
      item.cond = randomCond(rng, inner);
    }
    def.alphabet.push_back(std::move(item));
  }

  std::uniform_int_distribution<int> tmplCount(1, 3);
  const int nodeTemplates = tmplCount(rng);
  for (int i = 0; i < nodeTemplates; ++i) {
    def.node.push_back(randomTemplate(rng, def, vars));
  }
  const int edgeTemplates = tmplCount(rng);
  for (int i = 0; i < edgeTemplates; ++i) {
    def.edge.push_back(randomTemplate(rng, def, vars));
  }
  return def;
}

// The builtin a case index maps to, so every suite covers all four evenly.
const FamilyDef& builtinFor(int index) {
  const auto& all = family::builtinFamilies();
  return all[static_cast<std::size_t>(index) % all.size()];
}

// ---------------------------------------------------------------------------

TEST(PropFamily, RandomDefinitionsRoundTripThroughText) {
  const int iterations = envIterations(200);
  for (int i = 0; i < iterations; ++i) {
    const unsigned seed =
        testsupport::effectiveSeed(41000u + static_cast<unsigned>(i));
    std::mt19937 rng(seed);
    const FamilyDef def = randomDef(rng);
    std::string rendered;
    FamilyDef reparsed;
    try {
      rendered = family::renderFamilyText(def);
      reparsed = family::parseFamilyText(rendered);
    } catch (const re::Error& e) {
      FAIL() << "case " << i << " (seed " << seed
             << "): canonical text of a structurally valid definition "
                "failed to round-trip: "
             << e.what() << "\n"
             << rendered;
    }
    ASSERT_EQ(reparsed, def) << "case " << i << " (seed " << seed
                             << "): round-trip changed the definition\n"
                             << rendered;
    ASSERT_EQ(family::renderFamilyText(reparsed), rendered)
        << "case " << i << " (seed " << seed
        << "): canonical serialization is not a fixpoint";
  }
}

TEST(PropFamily, InstantiationIsDeterministicAcrossTextRoundTrip) {
  const int iterations = envIterations(200);
  int instantiated = 0;
  for (int i = 0; i < iterations; ++i) {
    const unsigned seed =
        testsupport::effectiveSeed(42000u + static_cast<unsigned>(i));
    std::mt19937 rng(seed);
    const FamilyDef& def = builtinFor(i);
    gen::FamilySampleOptions options;
    options.minDelta = 1;
    options.maxDelta = 5;
    const family::Env params = gen::randomFamilyParams(rng, def, options);
    const re::Problem p = family::instantiate(def, params);
    ASSERT_EQ(family::instantiate(def, params), p)
        << def.name << " case " << i << " (seed " << seed << ")";
    const FamilyDef reparsed =
        family::parseFamilyText(family::renderFamilyText(def));
    ASSERT_EQ(family::instantiate(reparsed, params), p)
        << def.name << " case " << i << " (seed " << seed
        << "): instantiation drifted across a text round-trip";
    ++instantiated;
  }
  EXPECT_EQ(instantiated, iterations);
}

TEST(PropFamily, DslPiCanonicalizesIdenticallyToCoreAcrossGrid) {
  const FamilyDef pi = *family::findBuiltin("pi");
  int cases = 0;
  for (re::Count delta = 1; delta <= 7; ++delta) {
    for (re::Count a = 0; a <= delta; ++a) {
      for (re::Count x = 0; x <= delta; ++x) {
        const re::Problem dsl = family::instantiateWithDefaults(
            pi, {{"delta", delta}, {"a", a}, {"x", x}});
        const re::Problem hard = core::familyProblem(delta, a, x);
        ASSERT_EQ(dsl, hard) << "delta=" << delta << " a=" << a << " x=" << x;
        const auto canonDsl = re::canonicalize(dsl);
        const auto canonHard = re::canonicalize(hard);
        ASSERT_EQ(canonDsl.hash, canonHard.hash)
            << "delta=" << delta << " a=" << a << " x=" << x;
        ASSERT_EQ(canonDsl.problem, canonHard.problem)
            << "delta=" << delta << " a=" << a << " x=" << x;
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 200);  // the full grid is the iteration count here
}

TEST(PropFamily, SpeedupStepsAreBitIdenticalAcrossThreadWidths) {
  const int iterations = envIterations(200);
  for (int i = 0; i < iterations; ++i) {
    const unsigned seed =
        testsupport::effectiveSeed(43000u + static_cast<unsigned>(i));
    std::mt19937 rng(seed);
    gen::FamilySampleOptions options;
    options.minDelta = 2;
    options.maxDelta = 3;
    const re::Problem p =
        gen::randomFamilyProblem(rng, builtinFor(i), options);

    // Separate cores per width: a shared core would serve width 1's cached
    // result to widths 2 and 8 and the comparison would check nothing.
    std::vector<re::Problem> rProblems;
    std::vector<re::Problem> rbarProblems;
    for (const int width : {1, 2, 8}) {
      re::PassOptions passOptions;
      passOptions.numThreads = width;
      re::EngineSession session(std::make_shared<re::EngineCore>(),
                                passOptions);
      try {
        const re::StepResult r = session.applyR(p);
        const re::StepResult rbar = session.applyRbar(r.problem);
        rProblems.push_back(r.problem);
        rbarProblems.push_back(rbar.problem);
      } catch (const re::Error&) {
        // Engine guard: must trip identically at every width, which the
        // size mismatch below would expose.
        break;
      }
    }
    ASSERT_TRUE(rProblems.size() == 0 || rProblems.size() == 3)
        << builtinFor(i).name << " case " << i << " (seed " << seed
        << "): engine guard tripped at some widths only";
    for (std::size_t w = 1; w < rProblems.size(); ++w) {
      ASSERT_EQ(rProblems[w], rProblems[0])
          << builtinFor(i).name << " case " << i << " (seed " << seed
          << "): R differs between width 1 and width " << (w == 1 ? 2 : 8);
      ASSERT_EQ(rbarProblems[w], rbarProblems[0])
          << builtinFor(i).name << " case " << i << " (seed " << seed
          << "): Rbar differs between width 1 and width " << (w == 1 ? 2 : 8);
    }
  }
}

}  // namespace
}  // namespace relb::prop
