// End-to-end socket tests against a live Server: every byte here went
// through the real accept loop, the framed protocol, the scheduler, and a
// driver run over the shared core.  This suite also runs under the
// thread-sanitizer CI job -- it is the concurrent-sessions-over-one-core
// exercise for the whole service stack.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.hpp"
#include "io/json.hpp"
#include "re/types.hpp"
#include "serve/client.hpp"

namespace relb::serve {
namespace {

namespace fs = std::filesystem;

// The MIS_3 fixture the CLI golden tests pin, as protocol specs.
constexpr const char* kNodeSpec = "M^3; P O^2";
constexpr const char* kEdgeSpec = "M [P O]; O O";

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A unix-socket path short enough for sockaddr_un (TempDir can be long;
/// sun_path cannot).
std::string socketPath(const std::string& tag) {
  return "/tmp/relb-serve-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

/// A deliberately protocol-ignorant connection for speaking broken bytes
/// at the server -- something the Client library refuses to do.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw re::Error("raw socket: " + std::string(strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw re::Error("raw connect: " + std::string(strerror(errno)));
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void write(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  Response readResponse() {
    char buffer[65536];
    for (;;) {
      if (auto payload = decoder_.next(); payload.has_value()) {
        return responseFromJson(io::Json::parse(*payload));
      }
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed before a response arrived";
        return Response{};
      }
      decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
  }

  /// True iff the server closed its end (EOF on the next read).
  bool peerClosed() {
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

Request problemRequest(std::int64_t id, int maxSteps = 2) {
  Request request;
  request.kind = Request::Kind::kProblem;
  request.id = id;
  request.nodeSpec = kNodeSpec;
  request.edgeSpec = kEdgeSpec;
  request.maxSteps = maxSteps;
  return request;
}

/// What the serial CLI prints for the same request -- the reference the
/// server's bytes must equal.
driver::RunResult cliReference(int maxSteps) {
  driver::RunRequest request;
  request.mode = driver::RunRequest::Mode::kProblem;
  request.nodeSpec = kNodeSpec;
  request.edgeSpec = kEdgeSpec;
  request.maxSteps = maxSteps;
  return driver::run(request);
}

TEST(Server, PingOverUnixSocket) {
  ServeConfig config;
  config.unixSocketPath = socketPath("ping");
  Server server(config);
  server.start();
  EXPECT_TRUE(server.running());

  Client client = Client::connectUnix(config.unixSocketPath);
  Request ping;
  ping.kind = Request::Kind::kPing;
  ping.id = 41;
  const Response pong = client.roundTrip(ping);
  EXPECT_TRUE(pong.ok());
  EXPECT_EQ(pong.id, 41);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, PingOverTcpEphemeralPort) {
  ServeConfig config;  // defaults: 127.0.0.1, port 0
  Server server(config);
  server.start();
  ASSERT_GT(server.port(), 0);
  Client client = Client::connectTcp("127.0.0.1", server.port());
  Request ping;
  ping.id = 1;
  EXPECT_TRUE(client.roundTrip(ping).ok());
  server.stop();
}

TEST(Server, ProblemResponseMatchesCliByteForByte) {
  const driver::RunResult reference = cliReference(2);
  ASSERT_EQ(reference.status, driver::RunStatus::kOk);

  ServeConfig config;
  config.unixSocketPath = socketPath("cli-bytes");
  Server server(config);
  server.start();
  Client client = Client::connectUnix(config.unixSocketPath);
  const Response response = client.roundTrip(problemRequest(1));
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.output, reference.output);
  EXPECT_EQ(response.diagnostics, reference.diagnostics);
  ASSERT_TRUE(response.stats.has_value());
  EXPECT_GT(response.stats->runMicros, 0);
  server.stop();
}

TEST(Server, EightConcurrentClientsGetBitIdenticalAnswers) {
  const driver::RunResult reference = cliReference(2);

  ServeConfig config;
  config.unixSocketPath = socketPath("concurrent");
  Server server(config);
  server.start();

  constexpr int kClients = 8;
  std::vector<std::string> outputs(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = Client::connectUnix(config.unixSocketPath);
        // Two requests per connection: the first 8 race each other cold,
        // the second 8 are warm -- both must produce the same bytes.
        for (int round = 0; round < 2; ++round) {
          const Response response =
              client.roundTrip(problemRequest(c * 2 + round + 1));
          if (!response.ok()) {
            errors[static_cast<std::size_t>(c)] = response.diagnostics;
            return;
          }
          if (round == 0) {
            outputs[static_cast<std::size_t>(c)] = response.output;
          } else if (outputs[static_cast<std::size_t>(c)] !=
                     response.output) {
            errors[static_cast<std::size_t>(c)] = "warm != cold output";
            return;
          }
        }
      } catch (const re::Error& e) {
        errors[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[static_cast<std::size_t>(c)], "") << "client " << c;
    EXPECT_EQ(outputs[static_cast<std::size_t>(c)], reference.output)
        << "client " << c;
  }
  server.stop();
}

TEST(Server, WarmDuplicateChainHasZeroMissesAndIdenticalCertificate) {
  const fs::path storeDir = freshDir("serve_warm_chain_store");
  ServeConfig config;
  config.unixSocketPath = socketPath("warm-chain");
  config.storeDir = storeDir.string();
  Server server(config);
  server.start();

  Request chain;
  chain.kind = Request::Kind::kChain;
  chain.id = 1;
  chain.chainDelta = 3;
  chain.wantCertificate = true;

  Client client = Client::connectUnix(config.unixSocketPath);
  const Response cold = client.roundTrip(chain);
  ASSERT_TRUE(cold.ok()) << cold.diagnostics;
  ASSERT_FALSE(cold.certificate.empty());
  ASSERT_TRUE(cold.stats.has_value());
  EXPECT_GT(cold.stats->totalMisses(), 0);
  EXPECT_GT(cold.stats->storeWrites, 0);

  // The identical submission, warm: answered entirely from the shared
  // core -- zero recomputations, zero store writes, identical bytes.
  chain.id = 2;
  const Response warm = client.roundTrip(chain);
  ASSERT_TRUE(warm.ok()) << warm.diagnostics;
  ASSERT_TRUE(warm.stats.has_value());
  EXPECT_EQ(warm.stats->totalMisses(), 0);
  EXPECT_EQ(warm.stats->storeWrites, 0);
  EXPECT_GT(warm.stats->totalHits(), 0);
  EXPECT_EQ(warm.certificate, cold.certificate);
  EXPECT_EQ(warm.output, cold.output);

  // And the bytes are exactly what the CLI's --save-cert writes.
  driver::RunRequest reference;
  reference.mode = driver::RunRequest::Mode::kChain;
  reference.chainDelta = 3;
  reference.captureCert = true;
  const driver::RunResult cli = driver::run(reference);
  ASSERT_EQ(cli.status, driver::RunStatus::kOk);
  EXPECT_EQ(cold.certificate, cli.certificateBytes);
  server.stop();
}

TEST(Server, FullQueueAnswers429) {
  ServeConfig config;
  config.unixSocketPath = socketPath("queue-full");
  config.queueCapacity = 0;  // every admission is rejected, deterministically
  Server server(config);
  server.start();
  Client client = Client::connectUnix(config.unixSocketPath);
  const Response response = client.roundTrip(problemRequest(1));
  EXPECT_EQ(response.code, StatusCode::kRejected);
  EXPECT_EQ(response.status, "rejected");
  // Rejection is per-request: the connection survives, pings still work.
  Request ping;
  ping.id = 2;
  EXPECT_TRUE(client.roundTrip(ping).ok());
  server.stop();
}

TEST(Server, QueuedRequestPastDeadlineAnswers504) {
  ServeConfig config;
  config.unixSocketPath = socketPath("deadline");
  config.workers = 1;  // single lane: the slow request blocks the queue
  Server server(config);
  server.start();

  // Head-of-line: a request that takes >= 100ms of real work.
  std::thread slow([&] {
    Client client = Client::connectUnix(config.unixSocketPath);
    (void)client.roundTrip(problemRequest(1, 6));
  });
  // Give the slow request time to be admitted and picked up by the lane.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  Client client = Client::connectUnix(config.unixSocketPath);
  Request request = problemRequest(2);
  request.deadlineMillis = 1;  // expires while queued behind the slow one
  const Response response = client.roundTrip(request);
  EXPECT_EQ(response.code, StatusCode::kDeadlineExpired);
  EXPECT_EQ(response.status, "deadline-expired");
  slow.join();
  server.stop();
}

TEST(Server, MalformedFrameGets400ThenClose) {
  ServeConfig config;
  config.unixSocketPath = socketPath("bad-frame");
  Server server(config);
  server.start();
  RawConn raw(config.unixSocketPath);
  raw.write("this is not a length header\n");
  const Response response = raw.readResponse();
  EXPECT_EQ(response.code, StatusCode::kBadRequest);
  // A poisoned stream cannot be re-synchronized: the server closes.
  EXPECT_TRUE(raw.peerClosed());
  server.stop();
}

TEST(Server, MalformedEnvelopeGets400AndKeepsConnection) {
  ServeConfig config;
  config.unixSocketPath = socketPath("bad-envelope");
  Server server(config);
  server.start();
  RawConn raw(config.unixSocketPath);
  // Correctly framed, but the payload is not a request envelope.
  raw.write(encodeFrame("{\"format\":\"wrong\",\"version\":1}"));
  const Response bad = raw.readResponse();
  EXPECT_EQ(bad.code, StatusCode::kBadRequest);
  // Envelope-level errors are per-request: the same connection still works.
  Request ping;
  ping.id = 5;
  raw.write(encodeFrame(requestToJson(ping).dump()));
  const Response pong = raw.readResponse();
  EXPECT_TRUE(pong.ok());
  EXPECT_EQ(pong.id, 5);
  server.stop();
}

TEST(Server, OverConnectionLimitAnswers503Busy) {
  ServeConfig config;
  config.unixSocketPath = socketPath("busy");
  config.maxConnections = 1;
  Server server(config);
  server.start();
  Client first = Client::connectUnix(config.unixSocketPath);
  Request ping;
  ping.id = 1;
  ASSERT_TRUE(first.roundTrip(ping).ok());  // first slot taken for sure
  RawConn second(config.unixSocketPath);
  const Response busy = second.readResponse();
  EXPECT_EQ(busy.code, StatusCode::kBusy);
  EXPECT_TRUE(second.peerClosed());
  // The first connection is unaffected.
  ping.id = 2;
  EXPECT_TRUE(first.roundTrip(ping).ok());
  server.stop();
}

TEST(Server, StopIsIdempotentAndRefusesRestart) {
  ServeConfig config;
  config.unixSocketPath = socketPath("stop");
  Server server(config);
  server.start();
  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(server.start(), re::Error);
  // The socket file is gone after stop.
  EXPECT_FALSE(fs::exists(config.unixSocketPath));
}

}  // namespace
}  // namespace relb::serve
