#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace relb::serve {
namespace {

using Admit = Scheduler::Admit;

TEST(Scheduler, RunsSubmittedJobs) {
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{2, 16}, registry);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    Scheduler::Job job;
    job.run = [&ran] { ran.fetch_add(1); };
    ASSERT_EQ(scheduler.submit(std::move(job)), Admit::kAccepted);
  }
  scheduler.drain();
  EXPECT_EQ(ran.load(), 10);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counterValue("serve.accepted"), 10u);
  EXPECT_EQ(snapshot.counterValue("serve.completed"), 10u);
  EXPECT_EQ(snapshot.counterValue("serve.rejected"), 0u);
  EXPECT_EQ(snapshot.counterValue("serve.expired"), 0u);
}

TEST(Scheduler, ZeroCapacityRejectsEverySubmission) {
  // The deterministic queue-full path: with capacity 0 every submission is
  // rejected at admission, before any lane is involved.
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{1, 0}, registry);
  std::atomic<int> ran{0};
  Scheduler::Job job;
  job.run = [&ran] { ran.fetch_add(1); };
  EXPECT_EQ(scheduler.submit(std::move(job)), Admit::kQueueFull);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(registry.snapshot().counterValue("serve.rejected"), 1u);
}

TEST(Scheduler, BoundedQueueRejectsBeyondCapacity) {
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{1, 2}, registry);

  // Plug the single lane so queued jobs stay queued.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> plugged{false};
  Scheduler::Job plug;
  plug.run = [&] {
    plugged.store(true);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  };
  ASSERT_EQ(scheduler.submit(std::move(plug)), Admit::kAccepted);
  while (!plugged.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  const auto makeJob = [&ran] {
    Scheduler::Job job;
    job.run = [&ran] { ran.fetch_add(1); };
    return job;
  };
  EXPECT_EQ(scheduler.submit(makeJob()), Admit::kAccepted);
  EXPECT_EQ(scheduler.submit(makeJob()), Admit::kAccepted);
  EXPECT_EQ(scheduler.queueDepth(), 2u);
  // Queue full now.
  EXPECT_EQ(scheduler.submit(makeJob()), Admit::kQueueFull);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.drain();
  EXPECT_EQ(ran.load(), 2);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counterValue("serve.rejected"), 1u);
  EXPECT_EQ(snapshot.gaugeValue("serve.queue_high_water"), 2);
}

TEST(Scheduler, ExpiredJobsRunExpireInsteadOfRun) {
  // A deadline in the past is already expired at dequeue: run() must never
  // fire, expire() must fire exactly once.
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{1, 16}, registry);
  std::atomic<int> ran{0};
  std::atomic<int> expired{0};
  Scheduler::Job job;
  job.run = [&ran] { ran.fetch_add(1); };
  job.expire = [&expired] { expired.fetch_add(1); };
  job.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  ASSERT_EQ(scheduler.submit(std::move(job)), Admit::kAccepted);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(expired.load(), 1);
  EXPECT_EQ(registry.snapshot().counterValue("serve.expired"), 1u);
}

TEST(Scheduler, FutureDeadlineDoesNotExpireAnIdleQueue) {
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{1, 16}, registry);
  std::atomic<int> ran{0};
  Scheduler::Job job;
  job.run = [&ran] { ran.fetch_add(1); };
  job.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  ASSERT_EQ(scheduler.submit(std::move(job)), Admit::kAccepted);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(registry.snapshot().counterValue("serve.expired"), 0u);
}

TEST(Scheduler, DrainCompletesQueuedJobsAndRejectsNewOnes) {
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{2, 64}, registry);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    Scheduler::Job job;
    job.run = [&ran] { ran.fetch_add(1); };
    ASSERT_EQ(scheduler.submit(std::move(job)), Admit::kAccepted);
  }
  scheduler.drain();
  EXPECT_EQ(ran.load(), 32);  // graceful: everything admitted was answered
  Scheduler::Job late;
  late.run = [&ran] { ran.fetch_add(1); };
  EXPECT_EQ(scheduler.submit(std::move(late)), Admit::kDraining);
  EXPECT_EQ(ran.load(), 32);
  // Idempotent from any thread.
  scheduler.drain();
}

TEST(Scheduler, ThrowingJobCountsAsFailedAndLaneSurvives) {
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{1, 16}, registry);
  std::atomic<int> ran{0};
  Scheduler::Job bad;
  bad.run = [] { throw std::runtime_error("boom"); };
  ASSERT_EQ(scheduler.submit(std::move(bad)), Admit::kAccepted);
  Scheduler::Job good;
  good.run = [&ran] { ran.fetch_add(1); };
  ASSERT_EQ(scheduler.submit(std::move(good)), Admit::kAccepted);
  scheduler.drain();
  EXPECT_EQ(ran.load(), 1);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counterValue("serve.failed"), 1u);
  EXPECT_EQ(snapshot.counterValue("serve.completed"), 1u);
}

TEST(Scheduler, LanesRunOnTheInjectedThreadPool) {
  // The "fans work onto the existing ThreadPool" contract, visible through
  // the pool.* instrumentation of the injected registry.
  obs::Registry registry;
  Scheduler scheduler(SchedulerConfig{2, 16}, registry);
  Scheduler::Job job;
  job.run = [] {};
  ASSERT_EQ(scheduler.submit(std::move(job)), Admit::kAccepted);
  scheduler.drain();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counterValue("pool.batches"), 1u);
  EXPECT_EQ(snapshot.counterValue("pool.items"),
            static_cast<std::uint64_t>(scheduler.workers()));
}

}  // namespace
}  // namespace relb::serve
