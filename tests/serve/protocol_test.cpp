#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "io/json.hpp"
#include "re/types.hpp"

namespace relb::serve {
namespace {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(Frame, EncodeDecodeRoundTrip) {
  const std::string payload = R"({"format":"relb-request"})";
  const std::string frame = encodeFrame(payload);
  EXPECT_EQ(frame, std::to_string(payload.size()) + "\n" + payload + "\n");

  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_EQ(decoder.next(), payload);
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, EmptyPayloadAndBackToBackFrames) {
  FrameDecoder decoder;
  decoder.feed(encodeFrame("") + encodeFrame("abc") + encodeFrame("{}"));
  EXPECT_EQ(decoder.next(), "");
  EXPECT_EQ(decoder.next(), "abc");
  EXPECT_EQ(decoder.next(), "{}");
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(Frame, IncrementalFeedYieldsSamePayloads) {
  const std::string stream = encodeFrame("hello") + encodeFrame("world");
  FrameDecoder decoder;
  std::vector<std::string> got;
  for (const char byte : stream) {
    decoder.feed(std::string_view(&byte, 1));
    while (auto payload = decoder.next()) got.push_back(*payload);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"hello", "world"}));
}

TEST(Frame, RejectsMalformedHeaders) {
  {
    FrameDecoder decoder;
    decoder.feed("abc\nxyz\n");  // non-digit header
    EXPECT_THROW((void)decoder.next(), re::Error);
    // Poison is sticky.
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed("\npayload\n");  // empty header
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed("123456789\n");  // more than 8 digits
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed("999999999");  // overlong header, terminator not even seen
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
}

TEST(Frame, RejectsOversizedAndUnterminatedPayloads) {
  {
    FrameDecoder decoder;
    decoder.feed(std::to_string(kMaxFramePayloadBytes + 1) + "\n");
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed("3\nabcX");  // payload not followed by newline
    EXPECT_THROW((void)decoder.next(), re::Error);
  }
  EXPECT_THROW((void)encodeFrame(std::string(kMaxFramePayloadBytes + 1, 'x')),
               re::Error);
}

TEST(Frame, PartialFrameIsNotAnError) {
  FrameDecoder decoder;
  decoder.feed("5\nab");
  EXPECT_EQ(decoder.next(), std::nullopt);  // needs more bytes
  decoder.feed("cde\n");
  EXPECT_EQ(decoder.next(), "abcde");
}

// ---------------------------------------------------------------------------
// Request envelopes
// ---------------------------------------------------------------------------

TEST(RequestEnvelope, ProblemRoundTrip) {
  Request request;
  request.kind = Request::Kind::kProblem;
  request.id = 7;
  request.nodeSpec = "M^3; P O^2";
  request.edgeSpec = "M [P O]; O O";
  request.maxSteps = 4;
  request.deadlineMillis = 250;
  request.wantCertificate = true;
  request.wantStats = false;

  const Request back = requestFromJson(requestToJson(request));
  EXPECT_EQ(back.kind, Request::Kind::kProblem);
  EXPECT_EQ(back.id, 7);
  EXPECT_EQ(back.nodeSpec, request.nodeSpec);
  EXPECT_EQ(back.edgeSpec, request.edgeSpec);
  EXPECT_EQ(back.maxSteps, 4);
  EXPECT_EQ(back.deadlineMillis, 250);
  EXPECT_TRUE(back.wantCertificate);
  EXPECT_FALSE(back.wantStats);
}

TEST(RequestEnvelope, ChainAndPingRoundTrip) {
  Request chain;
  chain.kind = Request::Kind::kChain;
  chain.id = 3;
  chain.chainDelta = 5;
  chain.chainX0 = 2;
  const Request chainBack = requestFromJson(requestToJson(chain));
  EXPECT_EQ(chainBack.kind, Request::Kind::kChain);
  EXPECT_EQ(chainBack.chainDelta, 5);
  EXPECT_EQ(chainBack.chainX0, 2);

  Request ping;
  ping.kind = Request::Kind::kPing;
  ping.id = 9;
  const Request pingBack = requestFromJson(requestToJson(ping));
  EXPECT_EQ(pingBack.kind, Request::Kind::kPing);
  EXPECT_EQ(pingBack.id, 9);
}

TEST(RequestEnvelope, OptionalMembersDefaultAndUnknownMembersAreIgnored) {
  // Versioning rule: members may be added within a version, so a decoder
  // must default absent optionals and skip members it does not know.
  const Request request = requestFromJson(io::Json::parse(
      R"({"format":"relb-request","version":1,"id":1,"kind":"problem",)"
      R"("node":"M^3; P O^2","edge":"M [P O]; O O",)"
      R"("member_from_the_future":true})"));
  EXPECT_EQ(request.maxSteps, 6);
  EXPECT_EQ(request.deadlineMillis, 0);
  EXPECT_FALSE(request.wantCertificate);
  EXPECT_TRUE(request.wantStats);
}

TEST(RequestEnvelope, RejectsBadEnvelopes) {
  const auto reject = [](const std::string& text) {
    EXPECT_THROW((void)requestFromJson(io::Json::parse(text)), re::Error)
        << text;
  };
  reject(R"("not an object")");
  reject(R"({"version":1,"id":1,"kind":"ping"})");  // missing format
  reject(R"({"format":"wrong","version":1,"id":1,"kind":"ping"})");
  reject(R"({"format":"relb-request","version":2,"id":1,"kind":"ping"})");
  reject(R"({"format":"relb-request","version":1,"id":-1,"kind":"ping"})");
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"nope"})");
  // problem without specs
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"problem"})");
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"problem",)"
         R"("node":"","edge":"M M"})");
  // max_steps out of range
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"problem",)"
         R"("node":"M^3","edge":"M M","max_steps":0})");
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"problem",)"
         R"("node":"M^3","edge":"M M","max_steps":65})");
  // chain without delta / negative delta / negative deadline
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"chain"})");
  reject(
      R"({"format":"relb-request","version":1,"id":1,"kind":"chain","delta":-1})");
  reject(R"({"format":"relb-request","version":1,"id":1,"kind":"ping",)"
         R"("deadline_ms":-5})");
}

// ---------------------------------------------------------------------------
// Response envelopes
// ---------------------------------------------------------------------------

TEST(ResponseEnvelope, FullRoundTrip) {
  Response response;
  response.id = 11;
  response.code = StatusCode::kOk;
  response.status = "ok";
  response.output = "problem (Delta = 3, ...)\n";
  response.diagnostics = "";
  response.certificate = "{\n  \"format\": \"relb-cert\"\n}\n";
  SessionStats stats;
  stats.stepHits = 4;
  stats.stepMisses = 2;
  stats.storeWrites = 1;
  stats.queueMicros = 120;
  stats.runMicros = 4500;
  response.stats = stats;

  const Response back = responseFromJson(responseToJson(response));
  EXPECT_EQ(back.id, 11);
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.output, response.output);
  EXPECT_EQ(back.certificate, response.certificate);
  ASSERT_TRUE(back.stats.has_value());
  EXPECT_EQ(back.stats->stepHits, 4);
  EXPECT_EQ(back.stats->stepMisses, 2);
  EXPECT_EQ(back.stats->storeWrites, 1);
  EXPECT_EQ(back.stats->queueMicros, 120);
  EXPECT_EQ(back.stats->runMicros, 4500);
}

TEST(ResponseEnvelope, ErrorResponseAndStatusStrings) {
  const Response rejected =
      errorResponse(5, StatusCode::kRejected, "admission queue full");
  EXPECT_EQ(rejected.status, "rejected");
  EXPECT_FALSE(rejected.ok());
  const Response back = responseFromJson(responseToJson(rejected));
  EXPECT_EQ(back.code, StatusCode::kRejected);
  EXPECT_EQ(back.diagnostics, "admission queue full");
  EXPECT_FALSE(back.stats.has_value());

  EXPECT_EQ(statusString(StatusCode::kOk), "ok");
  EXPECT_EQ(statusString(StatusCode::kBadRequest), "bad-request");
  EXPECT_EQ(statusString(StatusCode::kRejected), "rejected");
  EXPECT_EQ(statusString(StatusCode::kFailed), "failed");
  EXPECT_EQ(statusString(StatusCode::kBusy), "busy");
  EXPECT_EQ(statusString(StatusCode::kDeadlineExpired), "deadline-expired");
}

TEST(ResponseEnvelope, RejectsUnknownCodesAndVersions) {
  EXPECT_THROW((void)responseFromJson(io::Json::parse(
                   R"({"format":"relb-response","version":1,"id":1,)"
                   R"("code":418,"status":"teapot"})")),
               re::Error);
  EXPECT_THROW((void)responseFromJson(io::Json::parse(
                   R"({"format":"relb-response","version":9,"id":1,)"
                   R"("code":200,"status":"ok"})")),
               re::Error);
}

TEST(SessionStatsLine, DescribesWarmAndColdRuns) {
  SessionStats cold;
  cold.stepHits = 1;
  cold.stepMisses = 3;
  cold.canonicalHits = 2;
  cold.storeWrites = 3;
  EXPECT_EQ(cold.describeLine(), "3 hits / 3 misses / 3 writes");
  EXPECT_EQ(cold.totalHits(), 3);
  EXPECT_EQ(cold.totalMisses(), 3);

  SessionStats warm;
  warm.stepHits = 12;
  EXPECT_EQ(warm.describeLine(), "12 hits / 0 misses / 0 writes");
}

}  // namespace
}  // namespace relb::serve
