// DiskStepStore: persistence across contexts, crash safety (truncated and
// corrupted entries are quarantined and recomputed, never trusted), and the
// zero-recomputation guarantee for warm-store runs.
#include "store/step_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/sequence.hpp"
#include "io/certificate.hpp"
#include "obs/metrics.hpp"
#include "re/problem.hpp"

namespace relb::store {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> objectFiles(const fs::path& root) {
  std::vector<fs::path> out;
  for (const auto& entry :
       fs::recursive_directory_iterator(root / "objects")) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  return out;
}

TEST(DiskStepStore, InitializesLayoutAndRejectsForeignFormat) {
  const fs::path dir = freshDir("store-layout");
  {
    DiskStepStore store(dir);
    EXPECT_TRUE(fs::exists(dir / "FORMAT"));
    EXPECT_TRUE(fs::exists(dir / "objects"));
    EXPECT_TRUE(fs::exists(dir / "quarantine"));
    EXPECT_EQ(store.objectCount(), 0u);
  }
  // Reopening an existing store is fine.
  DiskStepStore reopened(dir);
  // A root stamped by some other (future) version is refused.
  {
    std::ofstream out(dir / "FORMAT", std::ios::trunc);
    out << "relb-store 999\n";
  }
  EXPECT_THROW(DiskStepStore bad(dir), re::Error);
}

TEST(DiskStepStore, StepResultsPersistAcrossContexts) {
  const fs::path dir = freshDir("store-persist");
  const re::Problem p = re::misProblem(3);

  re::StepResult coldR, coldRbar;
  {
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<DiskStepStore>(dir));
    coldR = ctx.applyR(p);
    coldRbar = ctx.applyRbar(coldR.problem);
    const auto stats = ctx.stats();
    EXPECT_EQ(stats.stepMisses, 2u);
    EXPECT_EQ(stats.storeHits, 0u);
    EXPECT_EQ(stats.storeWrites, 2u);
  }

  // A brand-new context with the same store recomputes nothing.
  re::EngineContext warm;
  auto store = std::make_shared<DiskStepStore>(dir);
  warm.attachStore(store);
  const re::StepResult warmR = warm.applyR(p);
  const re::StepResult warmRbar = warm.applyRbar(warmR.problem);
  EXPECT_EQ(warmR.problem, coldR.problem);
  EXPECT_EQ(warmR.meaning, coldR.meaning);
  EXPECT_EQ(warmRbar.problem, coldRbar.problem);
  EXPECT_EQ(warmRbar.meaning, coldRbar.meaning);
  const auto stats = warm.stats();
  EXPECT_EQ(stats.stepMisses, 0u) << "warm store must recompute nothing";
  EXPECT_EQ(stats.storeHits, 2u);
  EXPECT_EQ(store->stats().hits, 2u);

  // Second lookup in the same context is served by the in-memory memo, not
  // the disk.
  (void)warm.applyR(p);
  EXPECT_EQ(warm.stats().storeHits, 2u);
  EXPECT_EQ(warm.stats().stepHits, 1u);
}

TEST(DiskStepStore, WarmChainCertificationRecomputesNothing) {
  const fs::path dir = freshDir("store-chain");
  const core::Chain chain = core::exactChain(32, 1);
  std::string coldBytes, warmBytes;
  {
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<DiskStepStore>(dir));
    const auto cert = core::buildChainCertificate(chain, &ctx);
    coldBytes = io::certificateToJson(cert).dumpPretty();
    EXPECT_GT(ctx.stats().zeroRoundMisses, 0u);
  }
  {
    // The warm run is also observable through the global counter registry:
    // every step is served by the store (store.hit ticks once per step,
    // store.miss not at all).  Asserted on snapshot deltas, not stdout.
    const auto before = obs::Registry::global().snapshot();
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<DiskStepStore>(dir));
    const auto cert = core::buildChainCertificate(chain, &ctx);
    warmBytes = io::certificateToJson(cert).dumpPretty();
    EXPECT_EQ(ctx.stats().zeroRoundMisses, 0u);
    EXPECT_EQ(ctx.stats().stepMisses, 0u);
    EXPECT_EQ(ctx.stats().storeHits, chain.steps.size());
    const auto after = obs::Registry::global().snapshot();
    EXPECT_EQ(after.counterValue("store.hit") -
                  before.counterValue("store.hit"),
              chain.steps.size());
    EXPECT_EQ(after.counterValue("store.miss"),
              before.counterValue("store.miss"));
    EXPECT_EQ(after.counterValue("store.write"),
              before.counterValue("store.write"));
  }
  EXPECT_EQ(coldBytes, warmBytes) << "certificates must be bit-identical "
                                     "between cold- and warm-store runs";
}

TEST(DiskStepStore, TruncatedEntryIsQuarantinedAndRecomputed) {
  const fs::path dir = freshDir("store-truncate");
  const re::Problem p = re::misProblem(3);
  re::StepResult expected;
  {
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<DiskStepStore>(dir));
    expected = ctx.applyR(p);
  }
  // Simulate a crash that left a half-written entry (bypassing the atomic
  // writer on purpose).
  const auto files = objectFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string original = [&] {
    std::ifstream in(files[0], std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out << original.substr(0, original.size() / 2);
  }

  auto store = std::make_shared<DiskStepStore>(dir);
  re::EngineContext ctx;
  ctx.attachStore(store);
  const re::StepResult recomputed = ctx.applyR(p);
  EXPECT_EQ(recomputed.problem, expected.problem);
  EXPECT_EQ(recomputed.meaning, expected.meaning);
  EXPECT_EQ(store->stats().quarantined, 1u);
  EXPECT_EQ(ctx.stats().stepMisses, 1u);  // recomputed, not trusted
  EXPECT_FALSE(fs::is_empty(dir / "quarantine"));
  // The recomputation was written back: a third context gets a clean hit.
  re::EngineContext again;
  again.attachStore(std::make_shared<DiskStepStore>(dir));
  (void)again.applyR(p);
  EXPECT_EQ(again.stats().storeHits, 1u);
  EXPECT_EQ(again.stats().stepMisses, 0u);
}

TEST(DiskStepStore, ChecksumMismatchIsQuarantined) {
  const fs::path dir = freshDir("store-corrupt");
  const re::Problem p = re::sinklessOrientationProblem(3);
  {
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<DiskStepStore>(dir));
    (void)ctx.zeroRoundSolvable(p, re::ZeroRoundMode::kSymmetricPorts);
  }
  const auto files = objectFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  // Flip the verdict inside the payload; the checksum no longer matches.
  std::string text = [&] {
    std::ifstream in(files[0], std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  const auto pos = text.find("\"solvable\":false");
  ASSERT_NE(pos, std::string::npos) << text;
  text.replace(pos, 16, "\"solvable\":true ");
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out << text;
  }

  auto store = std::make_shared<DiskStepStore>(dir);
  re::EngineContext ctx;
  ctx.attachStore(store);
  EXPECT_FALSE(ctx.zeroRoundSolvable(p, re::ZeroRoundMode::kSymmetricPorts))
      << "tampered verdict must not be believed";
  EXPECT_EQ(store->stats().quarantined, 1u);
}

TEST(DiskStepStore, DistinctZeroRoundModesDoNotCollide) {
  const fs::path dir = freshDir("store-modes");
  const re::Problem p = re::misProblem(3);
  auto store = std::make_shared<DiskStepStore>(dir);
  re::EngineContext ctx;
  ctx.attachStore(store);
  (void)ctx.zeroRoundSolvable(p, re::ZeroRoundMode::kSymmetricPorts);
  (void)ctx.zeroRoundSolvable(p, re::ZeroRoundMode::kAdversarialPorts);
  (void)ctx.zeroRoundSolvable(p, re::ZeroRoundMode::kWithEdgeInputs);
  EXPECT_EQ(store->objectCount(), 3u);
}

}  // namespace
}  // namespace relb::store
