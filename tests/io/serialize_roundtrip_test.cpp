// The round-trip guarantee: parse(serialize(P)) == P, for the JSON format
// (always) and the text format with alphabet header (whenever label names
// are whitespace-free) -- exercised over the paper's family sweep and over
// genuine R / Rbar outputs whose alphabets are machine-generated.
#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/family.hpp"
#include "re/re_step.hpp"

namespace relb::io {
namespace {

using re::Problem;

void expectRoundTrip(const Problem& p) {
  const Json j = problemToJson(p);
  const Problem back = problemFromJson(j);
  EXPECT_EQ(back, p);
  // Through actual bytes, compact and pretty.
  EXPECT_EQ(problemFromJson(Json::parse(j.dump())), p);
  EXPECT_EQ(problemFromJson(Json::parse(j.dumpPretty())), p);

  // The text format only admits whitespace-free label names; R / Rbar
  // outputs with synthetic names like "(M (MO))" are JSON-only.
  const auto names = p.alphabet.names();
  const bool textable = std::ranges::all_of(names, [](const std::string& n) {
    return n.find_first_of(" \t\n") == std::string::npos;
  });
  if (textable) {
    EXPECT_EQ(parseProblemText(renderProblemText(p)), p);
  } else {
    EXPECT_THROW((void)renderProblemText(p), re::Error);
  }
}

TEST(SerializeRoundTrip, FamilySweep) {
  for (re::Count delta : {3, 4, 7, 16, 32}) {
    for (re::Count a = 0; a <= delta; a += (delta > 8 ? 5 : 1)) {
      for (re::Count x = 0; x <= delta; x += (delta > 8 ? 7 : 1)) {
        expectRoundTrip(core::familyProblem(delta, a, x));
      }
    }
  }
}

TEST(SerializeRoundTrip, FamilyPlusAndClassics) {
  expectRoundTrip(core::familyPlusProblem(6, 3, 1));
  expectRoundTrip(re::misProblem(3));
  expectRoundTrip(re::misProblem(5));
  expectRoundTrip(re::sinklessOrientationProblem(3));
}

TEST(SerializeRoundTrip, SpeedupOutputs) {
  // R / Rbar outputs have synthetic alphabets and condensed configurations
  // with non-trivial group sets -- the harder round-trip cases.
  re::Problem p = re::misProblem(3);
  for (int i = 0; i < 3; ++i) {
    const re::StepResult r = re::applyR(p);
    expectRoundTrip(r.problem);
    const re::StepResult rbar = re::applyRbar(r.problem);
    expectRoundTrip(rbar.problem);
    p = rbar.problem;
    if (p.alphabet.size() > 12) break;
  }
}

TEST(SerializeRoundTrip, HugeExponentsSurvive) {
  // Condensed exponents are 64-bit; the astronomically-large-degree
  // problems must serialize without loss.
  const re::Count delta = re::Count{1} << 60;
  expectRoundTrip(core::familyProblem(delta, delta / 2, 3));
}

TEST(SerializeJson, RejectsTamperedDocuments) {
  const Json good = problemToJson(core::familyProblem(4, 3, 1));

  Json badVersion = good;
  // Rebuild with a bumped version: parsers accept exactly kFormatVersion.
  Json rebuilt = Json::object();
  for (const auto& [key, value] : badVersion.asObject()) {
    rebuilt.set(key, key == "version" ? Json(kFormatVersion + 1) : value);
  }
  EXPECT_THROW((void)problemFromJson(rebuilt), re::Error);

  // Label index outside the alphabet.
  std::string text = good.dump();
  const auto pos = text.find("\"set\":[0]");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"set\":[9]");
  EXPECT_THROW((void)problemFromJson(Json::parse(text)), re::Error);
}

TEST(SerializeText, HeaderPinsLabelOrder) {
  // Without the header, Problem::parse registers labels by first
  // appearance; the header restores the original order so operator==
  // (which compares alphabets) holds.
  re::Problem p;
  p.alphabet = re::Alphabet({"Z", "A"});
  const re::Label z = p.alphabet.at("Z");
  const re::Label a = p.alphabet.at("A");
  // First node configuration mentions only A, so a header-less reparse
  // would register A before Z.
  p.node = re::Constraint(2, {re::Configuration({{re::LabelSet{a}, 2}}),
                              re::Configuration({{re::LabelSet{z}, 2}})});
  p.edge = re::Constraint(2, {re::Configuration({{re::LabelSet{z, a}, 2}})});
  p.validate();

  const std::string text = renderProblemText(p);
  EXPECT_TRUE(text.starts_with("# alphabet: Z A\n")) << text;
  EXPECT_EQ(parseProblemText(text), p);

  // The header is a comment: stripping it still parses (round-eliminator
  // compatibility), merely with a different label order.
  const std::string noHeader = text.substr(text.find('\n') + 1);
  const re::Problem reordered = parseProblemText(noHeader);
  EXPECT_EQ(reordered.alphabet.names(),
            (std::vector<std::string>{"A", "Z"}));
  EXPECT_NE(reordered, p);
}

TEST(SerializeText, RejectsUndeclaredAndUnserializableLabels) {
  EXPECT_THROW((void)parseProblemText("# alphabet: M\nM M\n\nM M\n"
                                      "Q Q\n"),
               re::Error);

  re::Problem p;
  p.alphabet = re::Alphabet({"bad name"});
  p.node = re::Constraint(2, {re::Configuration({{re::LabelSet{0}, 2}})});
  p.edge = re::Constraint(2, {re::Configuration({{re::LabelSet{0}, 2}})});
  EXPECT_THROW((void)renderProblemText(p), re::Error);
}

TEST(SerializeLabelSet, RoundTripAndBounds) {
  const re::LabelSet s{0, 3, 7};
  EXPECT_EQ(labelSetFromJson(labelSetToJson(s), 8), s);
  EXPECT_THROW((void)labelSetFromJson(labelSetToJson(s), 7), re::Error);
}

}  // namespace
}  // namespace relb::io
