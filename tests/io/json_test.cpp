#include "io/json.hpp"

#include <gtest/gtest.h>

#include "re/types.hpp"

namespace relb::io {
namespace {

TEST(Json, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj.set("name", "relb");
  obj.set("count", std::int64_t{42});
  obj.set("negative", std::int64_t{-7});
  obj.set("flag", true);
  obj.set("nothing", nullptr);
  Json arr = Json::array();
  arr.push(1);
  arr.push(2);
  arr.push("three");
  obj.set("items", std::move(arr));

  const std::string compact = obj.dump();
  EXPECT_EQ(Json::parse(compact), obj);
  // Pretty form parses back to the same value too.
  EXPECT_EQ(Json::parse(obj.dumpPretty()), obj);
  // Determinism: dumping the reparsed value reproduces the bytes.
  EXPECT_EQ(Json::parse(compact).dump(), compact);
}

TEST(Json, ObjectOrderIsPreserved) {
  const Json j = Json::parse(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, StringEscapes) {
  Json s("line\nbreak\ttab \"quote\" back\\slash");
  EXPECT_EQ(Json::parse(s.dump()), s);
  Json ctrl(std::string("\x01\x02", 2));
  EXPECT_EQ(Json::parse(ctrl.dump()), ctrl);
}

// Pinned regression for the service protocol (docs/service.md): every
// control character U+0000..U+001F embedded in a string value or object key
// -- parser diagnostics echoed into protocol error responses routinely carry
// tabs and newlines -- must be emitted as a JSON escape, never raw, so the
// emitted document is always valid JSON and round-trips byte-for-byte.
TEST(Json, ControlCharactersAreAlwaysEscaped) {
  std::string all;
  for (int c = 0; c < 0x20; ++c) all += static_cast<char>(c);
  const Json value(all);
  const std::string dumped = value.dump();
  // The exact emission is pinned: short escapes for \n \r \t, \u00xx for
  // the rest (includes \b and \f -- the schemas do not use their short
  // forms).
  EXPECT_EQ(dumped,
            "\"\\u0000\\u0001\\u0002\\u0003\\u0004\\u0005\\u0006\\u0007"
            "\\u0008\\t\\n\\u000b\\u000c\\r\\u000e\\u000f"
            "\\u0010\\u0011\\u0012\\u0013\\u0014\\u0015\\u0016\\u0017"
            "\\u0018\\u0019\\u001a\\u001b\\u001c\\u001d\\u001e\\u001f\"");
  // No raw control byte anywhere in the emission...
  for (const char ch : dumped) {
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
  // ...and the bytes round-trip exactly, keys included.
  EXPECT_EQ(Json::parse(dumped), value);
  Json obj = Json::object();
  obj.set("diag\x01nostic\ttext\n", Json("a\x1f b"));
  EXPECT_EQ(Json::parse(obj.dump()), obj);
  EXPECT_EQ(Json::parse(obj.dump()).dump(), obj.dump());
}

// The parser side of the same contract: RFC 8259 forbids raw control
// characters inside strings, and accepting them would let a hand-forged
// document parse to a value whose re-dump disagrees with the input bytes.
TEST(Json, ParserRejectsRawControlCharactersInStrings) {
  EXPECT_THROW((void)Json::parse("\"a\nb\""), re::Error);
  EXPECT_THROW((void)Json::parse(std::string("\"a\tb\"")), re::Error);
  EXPECT_THROW((void)Json::parse(std::string("\"a\x01") + "b\""), re::Error);
  EXPECT_THROW((void)Json::parse(std::string("\"\x1f\"")), re::Error);
  // Their escaped forms are of course fine.
  EXPECT_EQ(Json::parse("\"a\\tb\"").asString(), "a\tb");
  EXPECT_EQ(Json::parse("\"\\u0001\"").asString(), std::string("\x01"));
}

TEST(Json, CheckedAccessorsThrow) {
  const Json j(std::int64_t{1});
  EXPECT_THROW((void)j.asString(), re::Error);
  EXPECT_THROW((void)j.asArray(), re::Error);
  EXPECT_EQ(j.asInt(), 1);
}

TEST(Json, MissingMemberThrows) {
  const Json j = Json::parse(R"({"a":1})");
  EXPECT_NE(j.find("a"), nullptr);
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_THROW((void)j.at("b"), re::Error);
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected duplicate-key error";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  try {
    (void)Json::parse("[1, 2,\n 3, oops]");
    FAIL() << "expected literal error";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Json, RejectsNonIntegerNumbers) {
  EXPECT_THROW((void)Json::parse("1.5"), re::Error);
  EXPECT_THROW((void)Json::parse("1e3"), re::Error);
  EXPECT_THROW((void)Json::parse("9223372036854775808"), re::Error);
  EXPECT_EQ(Json::parse("-9223372036854775807").asInt(),
            -9223372036854775807LL);
}

TEST(Json, RejectsTrailingContentAndDeepNesting) {
  EXPECT_THROW((void)Json::parse("{} x"), re::Error);
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_THROW((void)Json::parse(deep), re::Error);
}

TEST(Fnv1a64, KnownValuesAndStability) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64Hex("a"), "af63dc4c8601ec8c");
  // Sensitivity: a one-byte change flips the checksum.
  EXPECT_NE(fnv1a64Hex("relb"), fnv1a64Hex("relc"));
}

}  // namespace
}  // namespace relb::io
