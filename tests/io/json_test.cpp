#include "io/json.hpp"

#include <gtest/gtest.h>

#include "re/types.hpp"

namespace relb::io {
namespace {

TEST(Json, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj.set("name", "relb");
  obj.set("count", std::int64_t{42});
  obj.set("negative", std::int64_t{-7});
  obj.set("flag", true);
  obj.set("nothing", nullptr);
  Json arr = Json::array();
  arr.push(1);
  arr.push(2);
  arr.push("three");
  obj.set("items", std::move(arr));

  const std::string compact = obj.dump();
  EXPECT_EQ(Json::parse(compact), obj);
  // Pretty form parses back to the same value too.
  EXPECT_EQ(Json::parse(obj.dumpPretty()), obj);
  // Determinism: dumping the reparsed value reproduces the bytes.
  EXPECT_EQ(Json::parse(compact).dump(), compact);
}

TEST(Json, ObjectOrderIsPreserved) {
  const Json j = Json::parse(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, StringEscapes) {
  Json s("line\nbreak\ttab \"quote\" back\\slash");
  EXPECT_EQ(Json::parse(s.dump()), s);
  Json ctrl(std::string("\x01\x02", 2));
  EXPECT_EQ(Json::parse(ctrl.dump()), ctrl);
}

TEST(Json, CheckedAccessorsThrow) {
  const Json j(std::int64_t{1});
  EXPECT_THROW((void)j.asString(), re::Error);
  EXPECT_THROW((void)j.asArray(), re::Error);
  EXPECT_EQ(j.asInt(), 1);
}

TEST(Json, MissingMemberThrows) {
  const Json j = Json::parse(R"({"a":1})");
  EXPECT_NE(j.find("a"), nullptr);
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_THROW((void)j.at("b"), re::Error);
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected duplicate-key error";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  try {
    (void)Json::parse("[1, 2,\n 3, oops]");
    FAIL() << "expected literal error";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Json, RejectsNonIntegerNumbers) {
  EXPECT_THROW((void)Json::parse("1.5"), re::Error);
  EXPECT_THROW((void)Json::parse("1e3"), re::Error);
  EXPECT_THROW((void)Json::parse("9223372036854775808"), re::Error);
  EXPECT_EQ(Json::parse("-9223372036854775807").asInt(),
            -9223372036854775807LL);
}

TEST(Json, RejectsTrailingContentAndDeepNesting) {
  EXPECT_THROW((void)Json::parse("{} x"), re::Error);
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_THROW((void)Json::parse(deep), re::Error);
}

TEST(Fnv1a64, KnownValuesAndStability) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64Hex("a"), "af63dc4c8601ec8c");
  // Sensitivity: a one-byte change flips the checksum.
  EXPECT_NE(fnv1a64Hex("relb"), fnv1a64Hex("relc"));
}

}  // namespace
}  // namespace relb::io
