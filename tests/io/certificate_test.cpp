// Certificates end to end: build from a certified chain, serialize, reload,
// verify independently, and reject every class of mutation.  Also pins the
// golden certificate in tests/data/ -- regenerating the same chain must
// reproduce it byte for byte.
#include "io/certificate.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/sequence.hpp"
#include "io/verify.hpp"
#include "re/engine.hpp"
#include "re/re_step.hpp"
#include "re/zero_round.hpp"

namespace relb::io {
namespace {

using core::Chain;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Certificate goldenEquivalent() {
  return core::buildChainCertificate(core::exactChain(32, 1));
}

TEST(Certificate, BuildSerializeReloadVerify) {
  const Certificate cert = goldenEquivalent();
  EXPECT_EQ(cert.kind, "family-chain");
  EXPECT_EQ(cert.delta, 32);
  EXPECT_EQ(cert.steps.size(), 3u);
  EXPECT_EQ(cert.claimedRounds(), 2);

  const Certificate back = certificateFromJson(
      Json::parse(certificateToJson(cert).dumpPretty()));
  EXPECT_EQ(back.kind, cert.kind);
  EXPECT_EQ(back.delta, cert.delta);
  EXPECT_EQ(back.x0, cert.x0);
  ASSERT_EQ(back.steps.size(), cert.steps.size());
  for (std::size_t i = 0; i < cert.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].a, cert.steps[i].a);
    EXPECT_EQ(back.steps[i].x, cert.steps[i].x);
    EXPECT_EQ(back.steps[i].problem, cert.steps[i].problem);
    EXPECT_EQ(back.steps[i].zeroRoundSolvable, cert.steps[i].zeroRoundSolvable);
  }
  EXPECT_EQ(back.engineInfo, cert.engineInfo);

  const VerifyReport report = verifyCertificate(back);
  EXPECT_TRUE(report.ok) << report.describe();
  EXPECT_EQ(report.provenRounds, 2);
  EXPECT_TRUE(report.errors.empty());
}

TEST(Certificate, GoldenFileIsReproducedByteForByte) {
  const std::string goldenPath =
      std::string(RELB_TEST_DATA_DIR) + "/golden_certificate.json";
  const std::string onDisk = slurp(goldenPath);
  EXPECT_EQ(certificateToJson(goldenEquivalent()).dumpPretty(), onDisk)
      << "regenerating exactChain(32, 1) no longer reproduces "
      << goldenPath << "; if the schema changed intentionally, bump "
      << "kFormatVersion and regenerate the golden file";

  const Certificate loaded = loadCertificate(goldenPath);
  const VerifyReport report = verifyCertificate(loaded);
  EXPECT_TRUE(report.ok) << report.describe();
}

TEST(Certificate, ChecksumRejectsTextTampering) {
  const std::string text = certificateToJson(goldenEquivalent()).dumpPretty();
  // Flip a recorded parameter in the raw JSON without fixing the section
  // checksum -- loading must fail before any semantic check runs.
  std::string tampered = text;
  const auto pos = tampered.find("\"a\": 14");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 7, "\"a\": 15");
  try {
    (void)certificateFromJson(Json::parse(tampered));
    FAIL() << "expected checksum mismatch";
  } catch (const re::Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("steps"), std::string::npos);
  }
}

TEST(Certificate, VerifierRejectsSemanticMutations) {
  // Mutations with *recomputed* checksums get past loading; the verifier
  // must catch them semantically.
  {
    // Wrong parameters: the recorded problem no longer matches.
    Certificate c = goldenEquivalent();
    c.steps[1].a += 1;
    const VerifyReport r = verifyCertificate(c);
    EXPECT_FALSE(r.ok);
  }
  {
    // Flipped configuration: drop a node configuration from one step.
    Certificate c = goldenEquivalent();
    auto configs = c.steps[0].problem.node.configurations();
    configs.pop_back();
    c.steps[0].problem.node =
        re::Constraint(c.steps[0].problem.node.degree(), std::move(configs));
    const VerifyReport r = verifyCertificate(c);
    EXPECT_FALSE(r.ok);
  }
  {
    // Flipped zero-round verdict.
    Certificate c = goldenEquivalent();
    c.steps[2].zeroRoundSolvable = true;
    const VerifyReport r = verifyCertificate(c);
    EXPECT_FALSE(r.ok);
  }
  {
    // Unreachable jump: x decreases along the chain.
    Certificate c = goldenEquivalent();
    c.steps[2].x = 1;
    c.steps[2].problem = reconstructFamilyProblem(c.delta, c.steps[2].a, 1);
    const VerifyReport r = verifyCertificate(c);
    EXPECT_FALSE(r.ok);
  }
}

TEST(Certificate, IndependentReconstructionMatchesCore) {
  // The verifier's from-the-paper reconstruction and the engine-side
  // construction must agree exactly -- this is the cross-check that lets
  // the verifier trust neither.
  for (re::Count delta : {3, 5, 8, 32}) {
    for (re::Count a = 0; a <= delta; a += (delta > 8 ? 3 : 1)) {
      for (re::Count x = 0; x <= delta; x += (delta > 8 ? 5 : 1)) {
        EXPECT_EQ(reconstructFamilyProblem(delta, a, x),
                  core::familyProblem(delta, a, x))
            << "delta=" << delta << " a=" << a << " x=" << x;
      }
    }
  }
}

TEST(Certificate, SpeedupTraceVerifiesAndRejectsBadMeanings) {
  // Build a genuine two-operator trace for MIS at Delta = 3.
  const re::Problem start = re::misProblem(3);
  const re::StepResult r = re::applyR(start);
  const re::StepResult rbar = re::applyRbar(r.problem);

  Certificate cert;
  cert.kind = "speedup-trace";
  const auto record = [&](const std::string& op, const re::Problem& problem,
                          std::optional<std::vector<re::LabelSet>> meaning) {
    CertificateStep step;
    step.op = op;
    step.problem = problem;
    step.meaning = std::move(meaning);
    step.zeroRoundSolvable = re::zeroRoundSolvableSymmetricPorts(problem);
    cert.steps.push_back(std::move(step));
  };
  record("input", start, std::nullopt);
  record("R", r.problem, r.meaning);
  record("Rbar", rbar.problem, rbar.meaning);

  EXPECT_TRUE(verifyCertificate(cert).ok)
      << verifyCertificate(cert).describe();

  // Round trip preserves the meanings.
  const Certificate back =
      certificateFromJson(Json::parse(certificateToJson(cert).dump()));
  ASSERT_TRUE(back.steps[1].meaning.has_value());
  EXPECT_EQ(*back.steps[1].meaning, r.meaning);
  EXPECT_TRUE(verifyCertificate(back).ok);

  // Corrupt a renaming map: claim a fresh label means a *larger* set than
  // it does.  The decoded edge configurations now contain forbidden words.
  Certificate bad = cert;
  auto& meaning = *bad.steps[1].meaning;
  meaning[0] = re::LabelSet::full(start.alphabet.size());
  const VerifyReport report = verifyCertificate(bad);
  EXPECT_FALSE(report.ok);

  // Wrong operator order / unknown ops are rejected structurally.
  Certificate wrongOp = cert;
  wrongOp.steps[1].op = "input";
  EXPECT_FALSE(verifyCertificate(wrongOp).ok);
}

TEST(Certificate, SaveLoadAtomicAndUnreadable) {
  const std::string dir = testing::TempDir();
  const std::string path = dir + "/cert.json";
  const Certificate cert = goldenEquivalent();
  saveCertificate(path, cert);
  const Certificate back = loadCertificate(path);
  EXPECT_EQ(certificateToJson(back).dump(), certificateToJson(cert).dump());

  EXPECT_THROW((void)loadCertificate(dir + "/missing.json"), re::Error);

  // Truncated file: rejected by parse or checksum, never accepted.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << certificateToJson(cert).dumpPretty().substr(0, 100);
  }
  EXPECT_THROW((void)loadCertificate(path), re::Error);
}

}  // namespace
}  // namespace relb::io
