// Runs the paper's full lower-bound proof, machine-checked, for a chosen
// degree Delta and outdegree parameter k:
//
//   1. Lemma 6   -- compute R(Pi_Delta(a,x)) and match the claimed form;
//   2. Lemma 8   -- verify the speedup Rbar(R(Pi)) => Pi+ (proof script);
//   3. Lemma 12  -- certify non-0-round-solvability along the chain;
//   4. Lemma 13  -- build and certify the chain, report its length t;
//   5. Theorem 1 -- lift t to the LOCAL model bounds.
//
//   ./lower_bound_proof [delta] [k]
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/bounds.hpp"
#include "core/lemma8.hpp"
#include "core/sequence.hpp"
#include "core/transcript.hpp"
#include "re/engine.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  const re::Count delta = argc > 1 ? std::atoll(argv[1]) : (1 << 16);
  const re::Count k = argc > 2 ? std::atoll(argv[2]) : 1;

  std::cout << "Machine-checked lower bound for " << k
            << "-outdegree dominating sets on " << delta
            << "-regular trees\n\n";

  // The chain (Lemma 13 with the exact recurrence), certified through an
  // engine session so the per-step 0-round verdicts are memoized and any
  // later chain work against the same core reuses them.
  re::EngineSession engine(std::make_shared<re::EngineCore>());
  const core::Chain chain = core::exactChain(delta, k);
  const std::string cert = core::certifyChain(chain, engine);
  if (!cert.empty()) {
    std::cerr << "chain certification FAILED: " << cert << "\n";
    return 1;
  }
  std::cout << "chain certified: " << chain.steps.size() << " problems, "
            << chain.length() << " speedup steps\n";

  // Per-step machine checks of the two speedup lemmas (the chain certifier
  // already checked parameters and 0-round hardness).
  int checked = 0;
  for (std::size_t i = 0; i + 1 < chain.steps.size(); ++i) {
    const auto& s = chain.steps[i];
    const auto l6 = core::verifyLemma6(delta, s.a, s.x);
    if (!l6.ok) {
      std::cerr << "Lemma 6 FAILED at step " << i << ": " << l6.detail << "\n";
      return 1;
    }
    const auto l8 = core::verifyLemma8Symbolic(delta, s.a, s.x);
    if (!l8.ok) {
      std::cerr << "Lemma 8 FAILED at step " << i << ": " << l8.detail << "\n";
      return 1;
    }
    ++checked;
  }
  std::cout << "Lemmas 6 and 8 verified at every step (" << checked
            << " steps)\n";

  const re::Count t = core::pnLowerBoundRounds(delta, k);
  std::cout << "\n=> PN-model lower bound (with Delta-edge coloring): " << t
            << " rounds\n";
  std::cout << "   (paper: Omega(log Delta); log2(Delta) = "
            << std::log2(static_cast<double>(delta)) << ")\n";

  // Theorem 1 lift for a few n regimes.
  std::cout << "\nTheorem 1 (LOCAL model), per log2(n):\n";
  std::cout << "  log2(n)   det bound   rand bound\n";
  for (double log2n : {16.0, 64.0, 256.0, 1024.0, 65536.0}) {
    std::cout << "  " << log2n << "\t    "
              << core::liftDeterministic(static_cast<double>(t), log2n,
                                         static_cast<double>(delta))
              << "\t"
              << core::liftRandomized(static_cast<double>(t), log2n,
                                      static_cast<double>(delta))
              << "\n";
  }

  // Emit the audited proof transcript.
  const std::string path = "lower_bound_transcript.txt";
  std::ofstream(path) << core::writeTranscript(delta, k);
  std::cout << "\nfull transcript written to " << path << "\n";
  return 0;
}
