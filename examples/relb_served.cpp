// relb-served: round elimination as a long-running service.
//
// Listens on TCP loopback (or a unix-domain socket with --unix), speaks the
// framed JSON protocol of docs/service.md, and multiplexes every request
// onto one shared warm EngineCore -- so the thousandth client to ask for
// the Delta=3 chain certificate gets the cached answer, bit-identical to
// the first one's, without recomputing anything.
//
// Prints one `listening ...` line to stdout once the socket is bound (shell
// scripts read the resolved ephemeral port from it), then serves until
// SIGINT/SIGTERM, drains gracefully -- every admitted request is answered
// -- and exits 0 with a final serve.* counter summary.
//
//   relb_served [--port P] [--host H] [--unix PATH] [--workers N]
//               [--queue N] [--max-connections N] [--deadline-ms N]
//               [--store DIR]
#include <poll.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "re/types.hpp"
#include "serve/server.hpp"
#include "util/shutdown.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: relb_served [options]\n"
         "  --host H             TCP bind address (default 127.0.0.1)\n"
         "  --port P             TCP port; 0 picks an ephemeral one "
         "(default 0)\n"
         "  --unix PATH          listen on a unix-domain socket instead of "
         "TCP\n"
         "  --workers N          scheduler lanes; 0 = one per core "
         "(default 0)\n"
         "  --queue N            admission queue capacity (default 64)\n"
         "  --max-connections N  concurrent connection cap (default 64)\n"
         "  --deadline-ms N      default admission deadline; 0 = none "
         "(default 0)\n"
         "  --store DIR          attach the on-disk step store at DIR\n"
         "  --help               this text\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  relb::serve::ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "relb_served: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--host") {
        config.host = value();
      } else if (arg == "--port") {
        config.port = std::stoi(value());
      } else if (arg == "--unix") {
        config.unixSocketPath = value();
      } else if (arg == "--workers") {
        config.workers = std::stoi(value());
      } else if (arg == "--queue") {
        config.queueCapacity = static_cast<std::size_t>(std::stoul(value()));
      } else if (arg == "--max-connections") {
        config.maxConnections = std::stoi(value());
      } else if (arg == "--deadline-ms") {
        config.defaultDeadlineMillis = std::stol(value());
      } else if (arg == "--store") {
        config.storeDir = value();
      } else {
        std::cerr << "relb_served: unknown flag '" << arg << "'\n";
        return usage(std::cerr, 2);
      }
    } catch (const std::exception&) {
      std::cerr << "relb_served: bad value for " << arg << "\n";
      return 2;
    }
  }

  try {
    // Install the signal handlers before the server starts accepting, so a
    // signal in the window between bind and poll is never lost.
    relb::util::ShutdownSignal shutdown;
    relb::serve::Server server(config);
    server.start();
    if (!config.unixSocketPath.empty()) {
      std::cout << "listening unix " << config.unixSocketPath << std::endl;
    } else {
      std::cout << "listening tcp " << config.host << ":" << server.port()
                << std::endl;
    }

    pollfd fds[1] = {{shutdown.pollFd(), POLLIN, 0}};
    while (!shutdown.requested()) {
      (void)::poll(fds, 1, -1);
    }
    std::cout << "shutdown requested, draining" << std::endl;
    server.stop();

    const auto snapshot = relb::obs::Registry::global().snapshot();
    std::cout << "drained cleanly:";
    for (const auto& [name, count] : snapshot.counters) {
      if (name.rfind("serve.", 0) == 0) {
        std::cout << " " << name << "=" << count;
      }
    }
    std::cout << std::endl;
    return 0;
  } catch (const relb::re::Error& e) {
    std::cerr << "relb_served: " << e.what() << "\n";
    return 1;
  }
}
