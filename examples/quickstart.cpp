// Quickstart: encode a problem in the round-elimination formalism, inspect
// its diagrams, apply one speedup step, and analyze 0-round solvability.
//
//   ./quickstart [delta]
#include <cstdlib>
#include <iostream>

#include "re/diagram.hpp"
#include "re/problem.hpp"
#include "re/re_step.hpp"
#include "re/rename.hpp"
#include "re/zero_round.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  const re::Count delta = argc > 1 ? std::atoll(argv[1]) : 3;

  // 1. Encode MIS (Section 2.2 of Balliu-Brandt-Kuhn-Olivetti, PODC'21).
  const re::Problem mis = re::misProblem(delta);
  std::cout << "=== MIS at Delta = " << delta << " ===\n"
            << mis.render() << "\n";

  // 2. The edge diagram (Figure 1): O is stronger than P.
  const auto edgeRel = re::computeStrength(mis.edge, mis.alphabet.size());
  std::cout << "Edge diagram:\n" << edgeRel.renderDiagram(mis.alphabet) << "\n";

  // 3. Zero-round analysis (the starting point of every lower bound chain).
  std::cout << "0-round solvable (symmetric ports): "
            << (re::zeroRoundSolvableSymmetricPorts(mis) ? "yes" : "no")
            << "\n";
  std::cout << "randomized 0-round failure bound : >= "
            << re::randomizedFailureLowerBound(mis) << "\n\n";

  // 4. One automatic speedup step Rbar(R(.)) -- exact for small Delta.
  if (delta <= 4) {
    const re::Problem sped = re::speedupStep(mis);
    std::cout << "=== Rbar(R(MIS)) -- one round easier ===\n"
              << "labels: " << sped.alphabet.size() << " (was "
              << mis.alphabet.size() << ")\n"
              << sped.render() << "\n";
  } else {
    // R alone works for every Delta (its edge side is degree-2).
    const auto r = re::applyR(mis);
    std::cout << "=== R(MIS) (intermediate problem) ===\n"
              << "labels: " << r.problem.alphabet.size() << "\n"
              << r.problem.render() << "\n";
  }

  // 5. A classic fixed point: sinkless orientation.
  const re::Problem so = re::sinklessOrientationProblem(3);
  const re::Problem so1 = re::speedupStep(so);
  const re::Problem so2 = re::speedupStep(so1);
  std::cout << "sinkless orientation: speedup fixed point reached: "
            << (re::equivalentUpToRenaming(so1, so2) ? "yes" : "no") << "\n";
  return 0;
}
