// Standalone certificate verifier.
//
//   ./certificate_verifier [--verbose] <certificate.json> ...
//
// Loads each certificate (rejecting any checksum / format violation) and
// re-verifies every claim it makes using only the low-level constraint
// machinery -- this binary links relb_io and relb_re_base but NOT the
// speedup engine (engine.cpp, re_step.cpp), so it cannot inherit an engine
// bug.  See io/verify.hpp for the exact per-kind contract.
//
// Exit codes: 0 = every certificate verified, 1 = at least one rejected or
// unreadable, 2 = usage error.
#include <iostream>
#include <string>
#include <vector>

#include "io/certificate.hpp"
#include "io/verify.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  bool verbose = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: " << argv[0]
                << " [--verbose] <certificate.json> ...\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: " << argv[0]
              << " [--verbose] <certificate.json> ...\n";
    return 2;
  }

  bool allOk = true;
  for (const std::string& path : paths) {
    std::cout << path << ": ";
    try {
      const io::Certificate cert = io::loadCertificate(path);
      const io::VerifyReport report = io::verifyCertificate(cert);
      std::cout << cert.kind << ", " << cert.steps.size() << " step(s)\n"
                << report.describe() << "\n";
      if (verbose) {
        for (const std::string& check : report.checks) {
          std::cout << "  ok: " << check << "\n";
        }
      }
      allOk = allOk && report.ok;
    } catch (const re::Error& e) {
      std::cout << "REJECTED (unreadable)\n" << e.what() << "\n";
      allOk = false;
    }
  }
  return allOk ? 0 : 1;
}
