// A miniature command-line round eliminator (in the spirit of Olivetti's
// tool [36]): give it a problem in the text format, it prints diagrams,
// 0-round analysis, and iterates the speedup until a fixed point, a
// 0-round-solvable problem, or a label blow-up.
//
//   ./round_eliminator_cli "<node configs>" "<edge configs>" [maxSteps] [threads]
//
// Configurations are separated by ';'.  `threads` is the engine fan-out
// width (0 = one thread per core, the default; results are identical for
// every value).  Examples:
//
//   ./round_eliminator_cli "M^3; P O^2" "M [PO]; O O"         # MIS
//   ./round_eliminator_cli "O [IO]^2" "I O" 4                 # sinkless or.
//   ./round_eliminator_cli "M O^2; P^3" "M M; P O; O O" 6 1   # matching, serial
#include <cstdlib>
#include <iostream>
#include <string>

#include "re/autobound.hpp"
#include "re/diagram.hpp"
#include "re/problem.hpp"
#include "re/zero_round.hpp"

namespace {

std::string splitLines(std::string spec) {
  for (char& ch : spec) {
    if (ch == ';') ch = '\n';
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relb;
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " \"<node configs>\" \"<edge configs>\" [maxSteps] [threads]\n"
              << "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
              << "threads: 0 = hardware concurrency (default), 1 = serial\n";
    return 2;
  }
  re::Problem p;
  try {
    p = re::Problem::parse(splitLines(argv[1]), splitLines(argv[2]));
  } catch (const re::Error& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  const int maxSteps = argc > 3 ? std::atoi(argv[3]) : 6;
  const int numThreads = argc > 4 ? std::atoi(argv[4]) : 0;

  std::cout << "problem (Delta = " << p.delta() << ", "
            << p.alphabet.size() << " labels):\n"
            << p.render() << "\n";

  const auto edgeRel = re::computeStrength(p.edge, p.alphabet.size());
  std::cout << "edge diagram:\n" << edgeRel.renderDiagram(p.alphabet);
  try {
    const auto nodeRel = re::computeStrengthScalable(p.node,
                                                     p.alphabet.size());
    std::cout << "node diagram:\n" << nodeRel.renderDiagram(p.alphabet);
  } catch (const re::Error&) {
    std::cout << "node diagram: (undecided at this size)\n";
  }

  std::cout << "\n0-round solvable: symmetric ports "
            << (re::zeroRoundSolvableSymmetricPorts(p) ? "yes" : "no")
            << ", adversarial ports "
            << (re::zeroRoundSolvableAdversarialPorts(p) ? "yes" : "no")
            << ", with edge-port inputs "
            << (re::zeroRoundSolvableWithEdgeInputs(p) ? "yes" : "no")
            << "\n\n";

  re::IterateOptions options;
  options.maxSteps = maxSteps;
  options.maxLabels = 16;
  options.stepOptions.numThreads = numThreads;
  const auto trace = re::iterateSpeedup(p, options);
  std::cout << trace.describe() << "\n\n";
  if (trace.last.alphabet.size() <= 16) {
    std::cout << "last problem reached:\n" << trace.last.render();
  }

  // Automatic lower bound: speedup + hardness-preserving label merging.
  try {
    re::AutoLowerBoundOptions lbOptions;
    lbOptions.maxSteps = maxSteps;
    lbOptions.maxLabels = 10;
    lbOptions.stepOptions.numThreads = numThreads;
    const auto lb = re::autoLowerBound(p, lbOptions);
    std::cout << "\nautomatic lower bound: >= " << lb.rounds
              << " rounds (deterministic PN, high girth)\n";
  } catch (const re::Error& e) {
    std::cout << "\nautomatic lower bound: engine guard (" << e.what()
              << ")\n";
  }
  return 0;
}
