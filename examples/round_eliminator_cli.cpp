// A miniature command-line round eliminator (in the spirit of Olivetti's
// tool [36]): give it a problem in the text format, it prints diagrams,
// 0-round analysis, and iterates the speedup until a fixed point, a
// 0-round-solvable problem, or a label blow-up.
//
//   ./round_eliminator_cli [--stats] "<node configs>" "<edge configs>"
//       [maxSteps] [threads]
//
// Configurations are separated by ';'.  `threads` is the engine fan-out
// width (0 = one thread per core, the default; results are identical for
// every value).  `--stats` runs the speedup through the pass pipeline and
// prints a per-pass table per step plus the engine cache counters.
// Examples:
//
//   ./round_eliminator_cli "M^3; P O^2" "M [PO]; O O"         # MIS
//   ./round_eliminator_cli --stats "O [IO]^2" "I O" 4         # sinkless or.
//   ./round_eliminator_cli "M O^2; P^3" "M M; P O; O O" 6 1   # matching, serial
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "re/autobound.hpp"
#include "re/diagram.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"
#include "re/zero_round.hpp"

namespace {

std::string splitLines(std::string spec) {
  for (char& ch : spec) {
    if (ch == ';') ch = '\n';
  }
  return spec;
}

void usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " [--stats] \"<node configs>\" \"<edge configs>\""
               " [maxSteps] [threads]\n"
            << "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
            << "threads: 0 = hardware concurrency (default), 1 = serial\n"
            << "--stats: print a per-pass statistics table per speedup step\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relb;
  bool showStats = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      showStats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    usage(argv[0]);
    return 2;
  }
  re::Problem p;
  try {
    p = re::Problem::parse(splitLines(positional[0]),
                           splitLines(positional[1]));
  } catch (const re::Error& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  const int maxSteps =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 6;
  const int numThreads =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : 0;

  std::cout << "problem (Delta = " << p.delta() << ", "
            << p.alphabet.size() << " labels):\n"
            << p.render() << "\n";

  const auto edgeRel = re::computeStrength(p.edge, p.alphabet.size());
  std::cout << "edge diagram:\n" << edgeRel.renderDiagram(p.alphabet);
  try {
    const auto nodeRel = re::computeStrengthScalable(p.node,
                                                     p.alphabet.size());
    std::cout << "node diagram:\n" << nodeRel.renderDiagram(p.alphabet);
  } catch (const re::Error&) {
    std::cout << "node diagram: (undecided at this size)\n";
  }

  std::cout << "\n0-round solvable: symmetric ports "
            << (re::zeroRoundSolvableSymmetricPorts(p) ? "yes" : "no")
            << ", adversarial ports "
            << (re::zeroRoundSolvableAdversarialPorts(p) ? "yes" : "no")
            << ", with edge-port inputs "
            << (re::zeroRoundSolvableWithEdgeInputs(p) ? "yes" : "no")
            << "\n\n";

  re::PassOptions passOptions;
  passOptions.numThreads = numThreads;
  re::EngineContext ctx(passOptions);

  if (showStats) {
    // Drive the speedup through the pass pipeline, one stats table per step.
    const auto pipeline = re::PassManager::speedupPipeline();
    re::Problem current = p;
    for (int step = 1; step <= maxSteps; ++step) {
      try {
        auto result = pipeline.run(current, ctx);
        std::cout << "speedup step " << step << ":\n"
                  << result.renderStatsTable() << "\n";
        if (result.stopped) break;
        current = std::move(result.problem);
      } catch (const re::Error& e) {
        std::cout << "speedup step " << step << ": engine guard ("
                  << e.what() << ")\n\n";
        break;
      }
      if (current.alphabet.size() > 16) break;
    }
  }

  re::IterateOptions options;
  options.maxSteps = maxSteps;
  options.maxLabels = 16;
  options.stepOptions.numThreads = numThreads;
  options.context = &ctx;
  const auto trace = re::iterateSpeedup(p, options);
  std::cout << trace.describe() << "\n\n";
  if (trace.last.alphabet.size() <= 16) {
    std::cout << "last problem reached:\n" << trace.last.render();
  }

  // Automatic lower bound: speedup + hardness-preserving label merging.
  try {
    re::AutoLowerBoundOptions lbOptions;
    lbOptions.maxSteps = maxSteps;
    lbOptions.maxLabels = 10;
    lbOptions.stepOptions.numThreads = numThreads;
    lbOptions.context = &ctx;
    const auto lb = re::autoLowerBound(p, lbOptions);
    std::cout << "\nautomatic lower bound: >= " << lb.rounds
              << " rounds (deterministic PN, high girth)\n";
  } catch (const re::Error& e) {
    std::cout << "\nautomatic lower bound: engine guard (" << e.what()
              << ")\n";
  }

  if (showStats) {
    std::cout << "\nengine cache statistics:\n" << ctx.stats().describe();
  }
  return 0;
}
