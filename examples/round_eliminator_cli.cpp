// A miniature command-line round eliminator (in the spirit of Olivetti's
// tool [36]): give it a problem in the text format, it prints diagrams,
// 0-round analysis, and iterates the speedup until a fixed point, a
// 0-round-solvable problem, or a label blow-up.
//
//   ./round_eliminator_cli [flags] "<node configs>" "<edge configs>"
//       [maxSteps] [threads]
//   ./round_eliminator_cli [flags] --chain DELTA [--x0 K]
//   ./round_eliminator_cli --verify-cert FILE
//
// Configurations are separated by ';'.  `threads` is the engine fan-out
// width (0 = one thread per core, the default; results are identical for
// every value).  Flags:
//
//   --stats            print per-pass tables and the engine cache counters
//   --store DIR        attach the on-disk step store at DIR (created on
//                      first use); results persist across runs
//   --resume           require an existing store at --store DIR (refuses to
//                      start cold; use for "continue where I left off")
//   --chain DELTA      family-chain mode: build and certify the exact
//                      Lemma 13 chain for Pi_DELTA(DELTA, x0)
//   --x0 K             chain start parameter (default 1)
//   --save-cert FILE   write a certificate: the certified family chain in
//                      --chain mode, a speedup trace otherwise
//   --verify-cert FILE load and re-verify a certificate, print the report
//   --trace FILE       write a structured trace of the run to FILE
//   --trace-format F   trace format: chrome (trace_event JSON, loadable in
//                      Perfetto / chrome://tracing; the default) or text
//   --report FILE      write a versioned, checksummed JSON run report:
//                      per-phase wall time, counter totals, the chain walked
//
// Exit codes: 0 = success, 1 = step/certification/verification failure,
// 2 = usage or parse error.
//
// The entire behavior lives in src/driver (parse -> RunRequest, execute ->
// RunResult); this file only connects argv and the two output streams.
//
// Examples:
//
//   ./round_eliminator_cli "M^3; P O^2" "M [PO]; O O"         # MIS
//   ./round_eliminator_cli --stats "O [IO]^2" "I O" 4         # sinkless or.
//   ./round_eliminator_cli --chain 32 --store /tmp/relb-store
//       --save-cert chain32.json --stats
//   ./round_eliminator_cli --chain 32 --trace chain32.trace.json
//       --report chain32.report.json
//   ./round_eliminator_cli --verify-cert chain32.json
#include <iostream>

#include "driver/driver.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  const driver::ParseOutcome parsed = driver::parseArgs(argc, argv);
  if (!parsed.error.empty()) {
    std::cerr << parsed.error << "\n"
              << driver::usageText(parsed.request.programName);
    return 2;
  }
  if (parsed.helpRequested) {
    std::cerr << driver::usageText(parsed.request.programName);
    return 2;
  }
  driver::RunRequest request = parsed.request;
  // ^C / SIGTERM drain instead of dying mid-run: long runs stop at the next
  // phase boundary and still flush partial --report/--trace output.
  request.drainOnSignal = true;
  const driver::RunResult result = driver::run(request);
  std::cout << result.output;
  std::cerr << result.diagnostics;
  return result.exitCode();
}
