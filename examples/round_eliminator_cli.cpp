// A miniature command-line round eliminator (in the spirit of Olivetti's
// tool [36]): give it a problem in the text format, it prints diagrams,
// 0-round analysis, and iterates the speedup until a fixed point, a
// 0-round-solvable problem, or a label blow-up.
//
//   ./round_eliminator_cli [flags] "<node configs>" "<edge configs>"
//       [maxSteps] [threads]
//   ./round_eliminator_cli [flags] --chain DELTA [--x0 K]
//   ./round_eliminator_cli --verify-cert FILE
//
// Configurations are separated by ';'.  `threads` is the engine fan-out
// width (0 = one thread per core, the default; results are identical for
// every value).  Flags:
//
//   --stats            print per-pass tables and the engine cache counters
//   --store DIR        attach the on-disk step store at DIR (created on
//                      first use); results persist across runs
//   --resume           require an existing store at --store DIR (refuses to
//                      start cold; use for "continue where I left off")
//   --chain DELTA      family-chain mode: build and certify the exact
//                      Lemma 13 chain for Pi_DELTA(DELTA, x0)
//   --x0 K             chain start parameter (default 1)
//   --save-cert FILE   write a certificate: the certified family chain in
//                      --chain mode, a speedup trace otherwise
//   --verify-cert FILE load and re-verify a certificate, print the report
//
// Exit codes: 0 = success, 1 = step/certification/verification failure,
// 2 = usage or parse error.
//
// Examples:
//
//   ./round_eliminator_cli "M^3; P O^2" "M [PO]; O O"         # MIS
//   ./round_eliminator_cli --stats "O [IO]^2" "I O" 4         # sinkless or.
//   ./round_eliminator_cli --chain 32 --store /tmp/relb-store
//       --save-cert chain32.json --stats
//   ./round_eliminator_cli --verify-cert chain32.json
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sequence.hpp"
#include "io/certificate.hpp"
#include "io/verify.hpp"
#include "re/autobound.hpp"
#include "re/diagram.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"
#include "re/zero_round.hpp"
#include "store/step_store.hpp"

namespace {

std::string splitLines(std::string spec) {
  for (char& ch : spec) {
    if (ch == ';') ch = '\n';
  }
  return spec;
}

void usage(const char* prog) {
  std::cerr
      << "usage: " << prog
      << " [flags] \"<node configs>\" \"<edge configs>\" [maxSteps] [threads]\n"
      << "       " << prog << " [flags] --chain DELTA [--x0 K]\n"
      << "       " << prog << " --verify-cert FILE\n"
      << "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
      << "threads: 0 = hardware concurrency (default), 1 = serial\n"
      << "flags: --stats --store DIR --resume --save-cert FILE\n"
      << "       --verify-cert FILE --chain DELTA --x0 K\n";
}

// Drives maxSteps of R / Rbar through the context, recording every operator,
// renaming map, and zero-round verdict as a "speedup-trace" certificate.
relb::io::Certificate buildTraceCertificate(const relb::re::Problem& start,
                                            relb::re::EngineContext& ctx,
                                            int maxSteps, int maxLabels) {
  using namespace relb;
  io::Certificate cert;
  cert.kind = "speedup-trace";
  cert.engineInfo.emplace_back("generator", "relb");

  const auto record = [&](const std::string& op, re::Problem problem,
                          std::optional<std::vector<re::LabelSet>> meaning) {
    io::CertificateStep step;
    step.op = op;
    step.meaning = std::move(meaning);
    step.zeroRoundSolvable = ctx.zeroRoundSolvable(
        problem, re::ZeroRoundMode::kSymmetricPorts);
    step.problem = std::move(problem);
    const bool stop = step.zeroRoundSolvable;
    cert.steps.push_back(std::move(step));
    return stop;
  };

  if (record("input", start, std::nullopt)) return cert;
  re::Problem current = start;
  for (int i = 0; i < maxSteps; ++i) {
    re::StepResult r = ctx.applyR(current);
    if (record("R", r.problem, r.meaning)) return cert;
    re::StepResult rbar = ctx.applyRbar(r.problem);
    if (record("Rbar", rbar.problem, rbar.meaning)) return cert;
    current = std::move(rbar.problem);
    if (current.alphabet.size() > maxLabels) return cert;
  }
  return cert;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relb;
  bool showStats = false;
  bool resume = false;
  std::string storeDir, saveCert, verifyCert;
  long chainDelta = -1;
  long x0 = 1;
  std::vector<std::string> positional;

  const auto flagValue = [&](int& i, const std::string& flag) {
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      usage(argv[0]);
      std::exit(2);
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      showStats = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--store") {
      storeDir = flagValue(i, arg);
    } else if (arg == "--save-cert") {
      saveCert = flagValue(i, arg);
    } else if (arg == "--verify-cert") {
      verifyCert = flagValue(i, arg);
    } else if (arg == "--chain") {
      chainDelta = std::atol(flagValue(i, arg).c_str());
    } else if (arg == "--x0") {
      x0 = std::atol(flagValue(i, arg).c_str());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  // --verify-cert stands alone: load, re-verify, report.
  if (!verifyCert.empty()) {
    try {
      const io::Certificate cert = io::loadCertificate(verifyCert);
      const io::VerifyReport report = io::verifyCertificate(cert);
      std::cout << report.describe() << "\n";
      return report.ok ? 0 : 1;
    } catch (const re::Error& e) {
      std::cerr << "verify error: " << e.what() << "\n";
      return 1;
    }
  }

  if (resume && storeDir.empty()) {
    std::cerr << "--resume requires --store DIR\n";
    usage(argv[0]);
    return 2;
  }
  std::shared_ptr<store::DiskStepStore> stepStore;
  if (!storeDir.empty()) {
    if (resume &&
        !std::filesystem::exists(std::filesystem::path(storeDir) / "FORMAT")) {
      std::cerr << "--resume: no step store at '" << storeDir << "'\n";
      return 2;
    }
    try {
      stepStore = std::make_shared<store::DiskStepStore>(storeDir);
    } catch (const re::Error& e) {
      std::cerr << "store error: " << e.what() << "\n";
      return 1;
    }
  }

  // In --chain mode the problem text is implied, so [maxSteps] [threads]
  // shift to the front of the positional list.
  const std::size_t stepsIdx = chainDelta >= 0 ? 0 : 2;
  const int maxSteps = positional.size() > stepsIdx
                           ? std::atoi(positional[stepsIdx].c_str())
                           : 6;
  const int numThreads = positional.size() > stepsIdx + 1
                             ? std::atoi(positional[stepsIdx + 1].c_str())
                             : 0;

  re::PassOptions passOptions;
  passOptions.numThreads = numThreads;
  re::EngineContext ctx(passOptions);
  if (stepStore != nullptr) ctx.attachStore(stepStore);

  // --chain DELTA: build, certify, and optionally persist the family chain.
  if (chainDelta >= 0) {
    try {
      const core::Chain chain = core::exactChain(chainDelta, x0);
      std::cout << "exact chain for Pi_" << chainDelta << "(a, x), x0 = "
                << x0 << ":\n";
      for (std::size_t i = 0; i < chain.steps.size(); ++i) {
        std::cout << "  step " << i << ": a = " << chain.steps[i].a
                  << ", x = " << chain.steps[i].x << "\n";
      }
      const io::Certificate cert =
          core::buildChainCertificate(chain, &ctx, numThreads);
      std::cout << "chain certified: >= " << cert.claimedRounds()
                << " rounds (deterministic PN model)\n";
      if (!saveCert.empty()) {
        io::saveCertificate(saveCert, cert);
        std::cout << "certificate written to " << saveCert << "\n";
      }
      if (showStats) {
        std::cout << "\nengine cache statistics:\n" << ctx.stats().describe();
        if (stepStore != nullptr) std::cout << stepStore->stats().describe();
      }
      return 0;
    } catch (const re::Error& e) {
      std::cerr << "chain error: " << e.what() << "\n";
      return 1;
    }
  }

  if (positional.size() < 2) {
    usage(argv[0]);
    return 2;
  }
  re::Problem p;
  try {
    p = re::Problem::parse(splitLines(positional[0]),
                           splitLines(positional[1]));
  } catch (const re::Error& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "problem (Delta = " << p.delta() << ", "
            << p.alphabet.size() << " labels):\n"
            << p.render() << "\n";

  try {
    const auto edgeRel = re::computeStrength(p.edge, p.alphabet.size());
    std::cout << "edge diagram:\n" << edgeRel.renderDiagram(p.alphabet);
    try {
      const auto nodeRel = re::computeStrengthScalable(p.node,
                                                       p.alphabet.size());
      std::cout << "node diagram:\n" << nodeRel.renderDiagram(p.alphabet);
    } catch (const re::Error&) {
      std::cout << "node diagram: (undecided at this size)\n";
    }

    std::cout << "\n0-round solvable: symmetric ports "
              << (re::zeroRoundSolvableSymmetricPorts(p) ? "yes" : "no")
              << ", adversarial ports "
              << (re::zeroRoundSolvableAdversarialPorts(p) ? "yes" : "no")
              << ", with edge-port inputs "
              << (re::zeroRoundSolvableWithEdgeInputs(p) ? "yes" : "no")
              << "\n\n";

    if (showStats) {
      // Drive the speedup through the pass pipeline, one stats table per
      // step.
      const auto pipeline = re::PassManager::speedupPipeline();
      re::Problem current = p;
      for (int step = 1; step <= maxSteps; ++step) {
        try {
          auto result = pipeline.run(current, ctx);
          std::cout << "speedup step " << step << ":\n"
                    << result.renderStatsTable() << "\n";
          if (result.stopped) break;
          current = std::move(result.problem);
        } catch (const re::Error& e) {
          std::cout << "speedup step " << step << ": engine guard ("
                    << e.what() << ")\n\n";
          break;
        }
        if (current.alphabet.size() > 16) break;
      }
    }

    re::IterateOptions options;
    options.maxSteps = maxSteps;
    options.maxLabels = 16;
    options.stepOptions.numThreads = numThreads;
    options.context = &ctx;
    const auto trace = re::iterateSpeedup(p, options);
    std::cout << trace.describe() << "\n\n";
    if (trace.last.alphabet.size() <= 16) {
      std::cout << "last problem reached:\n" << trace.last.render();
    }

    if (!saveCert.empty()) {
      const io::Certificate cert =
          buildTraceCertificate(p, ctx, maxSteps, 16);
      io::saveCertificate(saveCert, cert);
      std::cout << "\nspeedup-trace certificate (" << cert.steps.size()
                << " steps) written to " << saveCert << "\n";
    }

    // Automatic lower bound: speedup + hardness-preserving label merging.
    try {
      re::AutoLowerBoundOptions lbOptions;
      lbOptions.maxSteps = maxSteps;
      lbOptions.maxLabels = 10;
      lbOptions.stepOptions.numThreads = numThreads;
      lbOptions.context = &ctx;
      const auto lb = re::autoLowerBound(p, lbOptions);
      std::cout << "\nautomatic lower bound: >= " << lb.rounds
                << " rounds (deterministic PN, high girth)\n";
    } catch (const re::Error& e) {
      std::cout << "\nautomatic lower bound: engine guard (" << e.what()
                << ")\n";
    }
  } catch (const re::Error& e) {
    std::cerr << "step error: " << e.what() << "\n";
    return 1;
  }

  if (showStats) {
    std::cout << "\nengine cache statistics:\n" << ctx.stats().describe();
    if (stepStore != nullptr) std::cout << stepStore->stats().describe();
  }
  return 0;
}
