// A miniature command-line round eliminator (in the spirit of Olivetti's
// tool [36]): give it a problem in the text format, it prints diagrams,
// 0-round analysis, and iterates the speedup until a fixed point, a
// 0-round-solvable problem, or a label blow-up.
//
//   ./round_eliminator_cli [flags] "<node configs>" "<edge configs>"
//       [maxSteps] [threads]
//   ./round_eliminator_cli [flags] --chain DELTA [--x0 K]
//   ./round_eliminator_cli --verify-cert FILE
//
// Configurations are separated by ';'.  `threads` is the engine fan-out
// width (0 = one thread per core, the default; results are identical for
// every value).  Flags:
//
//   --stats            print per-pass tables and the engine cache counters
//   --store DIR        attach the on-disk step store at DIR (created on
//                      first use); results persist across runs
//   --resume           require an existing store at --store DIR (refuses to
//                      start cold; use for "continue where I left off")
//   --chain DELTA      family-chain mode: build and certify the exact
//                      Lemma 13 chain for Pi_DELTA(DELTA, x0)
//   --x0 K             chain start parameter (default 1)
//   --save-cert FILE   write a certificate: the certified family chain in
//                      --chain mode, a speedup trace otherwise
//   --verify-cert FILE load and re-verify a certificate, print the report
//   --trace FILE       write a structured trace of the run to FILE
//   --trace-format F   trace format: chrome (trace_event JSON, loadable in
//                      Perfetto / chrome://tracing; the default) or text
//   --report FILE      write a versioned, checksummed JSON run report:
//                      per-phase wall time, counter totals, the chain walked
//
// Exit codes: 0 = success, 1 = step/certification/verification failure,
// 2 = usage or parse error.
//
// Examples:
//
//   ./round_eliminator_cli "M^3; P O^2" "M [PO]; O O"         # MIS
//   ./round_eliminator_cli --stats "O [IO]^2" "I O" 4         # sinkless or.
//   ./round_eliminator_cli --chain 32 --store /tmp/relb-store
//       --save-cert chain32.json --stats
//   ./round_eliminator_cli --chain 32 --trace chain32.trace.json
//       --report chain32.report.json
//   ./round_eliminator_cli --verify-cert chain32.json
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sequence.hpp"
#include "io/certificate.hpp"
#include "io/verify.hpp"
#include "obs/chrome_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "re/autobound.hpp"
#include "re/diagram.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"
#include "re/zero_round.hpp"
#include "store/step_store.hpp"
#include "util/thread_pool.hpp"

namespace {

std::string splitLines(std::string spec) {
  for (char& ch : spec) {
    if (ch == ';') ch = '\n';
  }
  return spec;
}

void usage(const char* prog) {
  std::cerr
      << "usage: " << prog
      << " [flags] \"<node configs>\" \"<edge configs>\" [maxSteps] [threads]\n"
      << "       " << prog << " [flags] --chain DELTA [--x0 K]\n"
      << "       " << prog << " --verify-cert FILE\n"
      << "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
      << "threads: 0 = hardware concurrency (default), 1 = serial\n"
      << "flags: --stats --store DIR --resume --save-cert FILE\n"
      << "       --verify-cert FILE --chain DELTA --x0 K\n"
      << "       --trace FILE --trace-format {chrome,text} --report FILE\n";
}

// Owns the observability wiring for one CLI run: the sinks selected by
// --trace/--report, the root phase spans' aggregation, and the finalization
// (flush trace, assemble + save the run report) every exit path goes
// through.
struct ObsSession {
  std::string command;
  std::string tracePath;
  std::string traceFormat = "chrome";
  std::string reportPath;
  int threads = 1;

  std::shared_ptr<relb::obs::TextSink> text;
  std::shared_ptr<relb::obs::ChromeTraceSink> chrome;
  std::shared_ptr<relb::obs::SpanAggregator> aggregator;
  std::chrono::steady_clock::time_point start;

  // Filled in by the run paths; copied into the report verbatim.
  long chainDelta = -1;
  long chainX0 = 1;
  std::vector<relb::obs::RunReport::ChainStep> chainSteps;
  std::vector<std::string> opsWalked;

  void attach() {
    start = std::chrono::steady_clock::now();
    auto& tracer = relb::obs::Tracer::global();
    if (!tracePath.empty()) {
      if (traceFormat == "chrome") {
        chrome = std::make_shared<relb::obs::ChromeTraceSink>(tracePath);
        tracer.addSink(chrome);
      } else {
        text = std::make_shared<relb::obs::TextSink>();
        tracer.addSink(text);
      }
    }
    if (!reportPath.empty()) {
      aggregator = std::make_shared<relb::obs::SpanAggregator>();
      tracer.addSink(aggregator);
    }
  }

  // Finalizes observability and passes the exit code through, so call sites
  // read `return session.finish(code);`.
  int finish(int code) {
    using namespace relb;
    auto& tracer = obs::Tracer::global();
    const std::int64_t totalMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    try {
      tracer.flush();  // the chrome sink writes its file here
      if (text != nullptr) {
        std::ofstream out(tracePath, std::ios::binary);
        out << text->render();
        if (!out) throw re::Error("cannot write trace to '" + tracePath + "'");
      }
      if (!tracePath.empty()) {
        std::cout << "trace (" << traceFormat << ") written to " << tracePath
                  << "\n";
      }
      if (aggregator != nullptr) {
        obs::RunReport report =
            obs::buildRunReport(*aggregator, obs::Registry::global());
        // Phases are the CLI's own root spans; they run back-to-back on the
        // main thread, so their wall times tile the run.  Depth-0 spans on
        // pool workers (e.g. chain.certify.step) do not, and stay in the
        // all-spans table only.
        std::erase_if(report.phases, [](const obs::RunReport::Row& row) {
          return row.name.rfind("phase.", 0) != 0;
        });
        report.command = command;
        report.totalWallMicros = totalMicros;
        report.threads = threads;
        report.chainDelta = chainDelta;
        report.chainX0 = chainX0;
        report.chainSteps = chainSteps;
        report.opsWalked = opsWalked;
        obs::saveRunReport(reportPath, report);
        std::cout << "run report written to " << reportPath << "\n";
      }
    } catch (const re::Error& e) {
      std::cerr << "observability error: " << e.what() << "\n";
      if (code == 0) code = 1;
    }
    tracer.clearSinks();
    return code;
  }
};

// Drives maxSteps of R / Rbar through the context, recording every operator,
// renaming map, and zero-round verdict as a "speedup-trace" certificate.
relb::io::Certificate buildTraceCertificate(const relb::re::Problem& start,
                                            relb::re::EngineContext& ctx,
                                            int maxSteps, int maxLabels) {
  using namespace relb;
  io::Certificate cert;
  cert.kind = "speedup-trace";
  cert.engineInfo.emplace_back("generator", "relb");

  const auto record = [&](const std::string& op, re::Problem problem,
                          std::optional<std::vector<re::LabelSet>> meaning) {
    io::CertificateStep step;
    step.op = op;
    step.meaning = std::move(meaning);
    step.zeroRoundSolvable = ctx.zeroRoundSolvable(
        problem, re::ZeroRoundMode::kSymmetricPorts);
    step.problem = std::move(problem);
    const bool stop = step.zeroRoundSolvable;
    cert.steps.push_back(std::move(step));
    return stop;
  };

  if (record("input", start, std::nullopt)) return cert;
  re::Problem current = start;
  for (int i = 0; i < maxSteps; ++i) {
    re::StepResult r = ctx.applyR(current);
    if (record("R", r.problem, r.meaning)) return cert;
    re::StepResult rbar = ctx.applyRbar(r.problem);
    if (record("Rbar", rbar.problem, rbar.meaning)) return cert;
    current = std::move(rbar.problem);
    if (current.alphabet.size() > maxLabels) return cert;
  }
  return cert;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relb;
  bool showStats = false;
  bool resume = false;
  std::string storeDir, saveCert, verifyCert;
  long chainDelta = -1;
  long x0 = 1;
  std::vector<std::string> positional;
  ObsSession session;

  const auto flagValue = [&](int& i, const std::string& flag) {
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      usage(argv[0]);
      std::exit(2);
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      showStats = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--store") {
      storeDir = flagValue(i, arg);
    } else if (arg == "--save-cert") {
      saveCert = flagValue(i, arg);
    } else if (arg == "--verify-cert") {
      verifyCert = flagValue(i, arg);
    } else if (arg == "--chain") {
      chainDelta = std::atol(flagValue(i, arg).c_str());
    } else if (arg == "--x0") {
      x0 = std::atol(flagValue(i, arg).c_str());
    } else if (arg == "--trace") {
      session.tracePath = flagValue(i, arg);
    } else if (arg == "--trace-format") {
      session.traceFormat = flagValue(i, arg);
      if (session.traceFormat != "chrome" && session.traceFormat != "text") {
        std::cerr << "--trace-format must be 'chrome' or 'text'\n";
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--report") {
      session.reportPath = flagValue(i, arg);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  {
    std::string command;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command += ' ';
      command += argv[i];
    }
    session.command = std::move(command);
  }
  session.attach();

  // --verify-cert stands alone: load, re-verify, report.
  //
  // Every phase span below closes before session.finish() runs (finish
  // snapshots the aggregator, so an open span would be invisible to the
  // report).
  if (!verifyCert.empty()) {
    int code = 0;
    try {
      const obs::ScopedSpan phase("phase.verify");
      const io::Certificate cert = io::loadCertificate(verifyCert);
      const io::VerifyReport report = io::verifyCertificate(cert);
      std::cout << report.describe() << "\n";
      code = report.ok ? 0 : 1;
    } catch (const re::Error& e) {
      std::cerr << "verify error: " << e.what() << "\n";
      code = 1;
    }
    return session.finish(code);
  }

  if (resume && storeDir.empty()) {
    std::cerr << "--resume requires --store DIR\n";
    usage(argv[0]);
    return session.finish(2);
  }
  std::shared_ptr<store::DiskStepStore> stepStore;
  if (!storeDir.empty()) {
    if (resume &&
        !std::filesystem::exists(std::filesystem::path(storeDir) / "FORMAT")) {
      std::cerr << "--resume: no step store at '" << storeDir << "'\n";
      return session.finish(2);
    }
    try {
      stepStore = std::make_shared<store::DiskStepStore>(storeDir);
    } catch (const re::Error& e) {
      std::cerr << "store error: " << e.what() << "\n";
      return session.finish(1);
    }
  }

  // In --chain mode the problem text is implied, so [maxSteps] [threads]
  // shift to the front of the positional list.
  const std::size_t stepsIdx = chainDelta >= 0 ? 0 : 2;
  const int maxSteps = positional.size() > stepsIdx
                           ? std::atoi(positional[stepsIdx].c_str())
                           : 6;
  const int numThreads = positional.size() > stepsIdx + 1
                             ? std::atoi(positional[stepsIdx + 1].c_str())
                             : 0;

  session.threads = util::resolveThreadCount(numThreads);

  re::PassOptions passOptions;
  passOptions.numThreads = numThreads;
  re::EngineContext ctx(passOptions);
  if (stepStore != nullptr) ctx.attachStore(stepStore);

  // --chain DELTA: build, certify, and optionally persist the family chain.
  if (chainDelta >= 0) {
    int code = 0;
    try {
      core::Chain chain;
      {
        const obs::ScopedSpan phase("phase.chain.build");
        chain = core::exactChain(chainDelta, x0);
      }
      std::cout << "exact chain for Pi_" << chainDelta << "(a, x), x0 = "
                << x0 << ":\n";
      for (std::size_t i = 0; i < chain.steps.size(); ++i) {
        std::cout << "  step " << i << ": a = " << chain.steps[i].a
                  << ", x = " << chain.steps[i].x << "\n";
      }
      session.chainDelta = chainDelta;
      session.chainX0 = x0;
      for (const core::ChainStep& step : chain.steps) {
        session.chainSteps.push_back({step.a, step.x});
      }
      io::Certificate cert;
      {
        const obs::ScopedSpan phase("phase.chain.certify");
        cert = core::buildChainCertificate(chain, &ctx, numThreads);
      }
      std::cout << "chain certified: >= " << cert.claimedRounds()
                << " rounds (deterministic PN model)\n";
      if (!saveCert.empty()) {
        const obs::ScopedSpan phase("phase.cert.save");
        io::saveCertificate(saveCert, cert);
        std::cout << "certificate written to " << saveCert << "\n";
      }
      if (showStats) {
        std::cout << "\nengine cache statistics:\n" << ctx.stats().describe();
        if (stepStore != nullptr) std::cout << stepStore->stats().describe();
      }
    } catch (const re::Error& e) {
      std::cerr << "chain error: " << e.what() << "\n";
      code = 1;
    }
    return session.finish(code);
  }

  if (positional.size() < 2) {
    usage(argv[0]);
    return session.finish(2);
  }
  re::Problem p;
  try {
    p = re::Problem::parse(splitLines(positional[0]),
                           splitLines(positional[1]));
  } catch (const re::Error& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return session.finish(2);
  }

  std::cout << "problem (Delta = " << p.delta() << ", "
            << p.alphabet.size() << " labels):\n"
            << p.render() << "\n";

  try {
    {
      const obs::ScopedSpan phase("phase.analyze");
      const auto edgeRel = re::computeStrength(p.edge, p.alphabet.size());
      std::cout << "edge diagram:\n" << edgeRel.renderDiagram(p.alphabet);
      try {
        const auto nodeRel = re::computeStrengthScalable(p.node,
                                                         p.alphabet.size());
        std::cout << "node diagram:\n" << nodeRel.renderDiagram(p.alphabet);
      } catch (const re::Error&) {
        std::cout << "node diagram: (undecided at this size)\n";
      }

      std::cout << "\n0-round solvable: symmetric ports "
                << (re::zeroRoundSolvableSymmetricPorts(p) ? "yes" : "no")
                << ", adversarial ports "
                << (re::zeroRoundSolvableAdversarialPorts(p) ? "yes" : "no")
                << ", with edge-port inputs "
                << (re::zeroRoundSolvableWithEdgeInputs(p) ? "yes" : "no")
                << "\n\n";
    }

    if (showStats) {
      // Drive the speedup through the pass pipeline, one stats table per
      // step.
      const obs::ScopedSpan phase("phase.pipeline");
      const auto pipeline = re::PassManager::speedupPipeline();
      re::Problem current = p;
      for (int step = 1; step <= maxSteps; ++step) {
        try {
          auto result = pipeline.run(current, ctx);
          std::cout << "speedup step " << step << ":\n"
                    << result.renderStatsTable() << "\n";
          if (result.stopped) break;
          current = std::move(result.problem);
        } catch (const re::Error& e) {
          std::cout << "speedup step " << step << ": engine guard ("
                    << e.what() << ")\n\n";
          break;
        }
        if (current.alphabet.size() > 16) break;
      }
    }

    {
      const obs::ScopedSpan phase("phase.iterate");
      re::IterateOptions options;
      options.maxSteps = maxSteps;
      options.maxLabels = 16;
      options.stepOptions.numThreads = numThreads;
      options.context = &ctx;
      const auto trace = re::iterateSpeedup(p, options);
      std::cout << trace.describe() << "\n\n";
      if (trace.last.alphabet.size() <= 16) {
        std::cout << "last problem reached:\n" << trace.last.render();
      }
      session.opsWalked.push_back("input");
      for (std::size_t i = 1; i < trace.steps.size(); ++i) {
        session.opsWalked.push_back("speedup");
      }
    }

    if (!saveCert.empty()) {
      const obs::ScopedSpan phase("phase.cert.save");
      const io::Certificate cert =
          buildTraceCertificate(p, ctx, maxSteps, 16);
      io::saveCertificate(saveCert, cert);
      std::cout << "\nspeedup-trace certificate (" << cert.steps.size()
                << " steps) written to " << saveCert << "\n";
    }

    // Automatic lower bound: speedup + hardness-preserving label merging.
    try {
      const obs::ScopedSpan phase("phase.autobound");
      re::AutoLowerBoundOptions lbOptions;
      lbOptions.maxSteps = maxSteps;
      lbOptions.maxLabels = 10;
      lbOptions.stepOptions.numThreads = numThreads;
      lbOptions.context = &ctx;
      const auto lb = re::autoLowerBound(p, lbOptions);
      std::cout << "\nautomatic lower bound: >= " << lb.rounds
                << " rounds (deterministic PN, high girth)\n";
    } catch (const re::Error& e) {
      std::cout << "\nautomatic lower bound: engine guard (" << e.what()
                << ")\n";
    }
  } catch (const re::Error& e) {
    std::cerr << "step error: " << e.what() << "\n";
    return session.finish(1);
  }

  if (showStats) {
    std::cout << "\nengine cache statistics:\n" << ctx.stats().describe();
    if (stepStore != nullptr) std::cout << stepStore->stats().describe();
  }
  return session.finish(0);
}
