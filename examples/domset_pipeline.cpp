// End-to-end k-outdegree dominating set pipeline on a concrete tree:
//
//   upper bound:  Linial coloring -> k-arbdefective coloring -> class sweep
//   lower bound:  Lemma 5 turns the computed set into a Pi_Delta(a, k)
//                 solution, which the generic LCL checker validates, and
//                 Lemma 9 + the chain machinery bound the achievable speed.
//
//   ./domset_pipeline [delta] [depth] [k]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "algos/domset.hpp"
#include "core/conversions.hpp"
#include "core/sequence.hpp"
#include "local/halfedge.hpp"
#include "re/engine.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  const int delta = argc > 1 ? std::atoi(argv[1]) : 6;
  const int depth = argc > 2 ? std::atoi(argv[2]) : 4;
  const int k = argc > 3 ? std::atoi(argv[3]) : 2;

  const local::Graph g = local::completeRegularTree(delta, depth);
  std::cout << "complete " << delta << "-regular tree, depth " << depth
            << ": n = " << g.numNodes() << "\n\n";

  // Upper bound: compute a k-outdegree dominating set.
  const auto ds = algos::kOutdegreeDominatingSet(g, k);
  const bool valid =
      local::isKOutdegreeDominatingSet(g, ds.inSet, ds.orientation, k);
  std::cout << k << "-outdegree dominating set: |S| = "
            << std::count(ds.inSet.begin(), ds.inSet.end(), true)
            << ", valid = " << (valid ? "yes" : "no") << "\n";
  std::cout << "rounds: " << ds.totalRounds() << " total = "
            << ds.roundsColoring << " coloring + " << ds.roundsDefective
            << " arbdefective + " << ds.roundsSweep << " sweep\n\n";

  // Lemma 5: one more round turns S into a Pi_Delta(Delta, k) solution.
  const auto labeling =
      core::lemma5Labeling(g, ds.inSet, ds.orientation, delta, k);
  const auto pi = core::familyProblem(delta, delta, k);
  const auto check = local::checkLabeling(g, pi, labeling);
  std::cout << "Lemma 5 labeling solves Pi_Delta(Delta, k): "
            << (check.ok() ? "yes" : "no") << "\n";

  // Lemma 9 in action: embed into Pi+, convert with the edge coloring.
  if (2 * k + 1 <= delta) {
    const auto plus =
        core::plusFromFamilyLabeling(g, labeling, delta, delta, k);
    const auto plusOk =
        local::checkLabeling(g, core::familyPlusProblem(delta, delta, k), plus);
    const auto converted = core::lemma9Convert(g, plus, delta, delta, k);
    const re::Count aNew = (delta - 2 * k - 1) / 2;
    const auto convOk = local::checkLabeling(
        g, core::familyProblem(delta, aNew, k + 1), converted);
    std::cout << "Lemma 9 conversion Pi+(" << delta << "," << k << ") -> Pi("
              << aNew << "," << k + 1
              << "): input valid = " << (plusOk.ok() ? "yes" : "no")
              << ", output valid = " << (convOk.ok() ? "yes" : "no") << "\n";
  }

  // The certified lower bound at these parameters.  The chain behind the
  // bound is re-certified through an engine session (memoized 0-round
  // verdicts); an empty violation string means every Lemma 12/13 claim
  // holds.
  re::EngineSession engine(std::make_shared<re::EngineCore>());
  const core::Chain chain = core::exactChain(delta, k);
  const std::string violation = core::certifyChain(chain, engine);
  if (!violation.empty()) {
    std::cerr << "chain certification FAILED: " << violation << "\n";
    return 1;
  }
  std::cout << "\npaper lower bound (PN model): "
            << core::pnLowerBoundRounds(delta, k)
            << " rounds (chain certified)\n";
  return 0;
}
