// relb-localsim: the massive-scale LOCAL-model simulator CLI.
//
// Generates a tree family instance on the compact CSR layout, runs one of
// the upper-bound kernels (Luby MIS, Cole-Vishkin color reduction, or the
// Section 1.1 MIS -> 0-outdegree dominating set reduction), verifies the
// per-node output, and prints the measured round count plus a state
// checksum that is bit-identical across --threads widths for a fixed seed.
//
// The measured rounds are the *upper* bounds tools/gap_figure.py joins
// against the engine-certified lower bounds (docs/simulator.md).
//
//   relb_localsim [--family F] [--nodes N] [--max-degree D] [--algo A]
//                 [--seed S] [--threads T] [--no-verify]
//                 [--report FILE] [--trace FILE] [--trace-format {chrome,text}]
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "local/sim.hpp"
#include "obs/chrome_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "re/types.hpp"
#include "util/thread_pool.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: relb_localsim [options]\n"
         "  --family F           instance family: random-tree, bounded-tree,\n"
         "                       complete-tree, path, broom "
         "(default random-tree)\n"
         "  --nodes N            number of nodes (default 1000000)\n"
         "  --max-degree D       family degree cap; 0 = family default "
         "(default 0)\n"
         "  --algo A             kernel: luby-mis, color-reduction,\n"
         "                       domset-reduction (default luby-mis)\n"
         "  --seed S             deterministic seed (default 1)\n"
         "  --threads T          0 = one lane per core, 1 = serial "
         "(default 0)\n"
         "  --no-verify          skip the CSR output verifier\n"
         "  --report FILE        write a relb-run-report JSON to FILE\n"
         "  --trace FILE         write a span trace to FILE\n"
         "  --trace-format FMT   'chrome' or 'text' (default chrome)\n"
         "  --help               this text\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  relb::local::SimOptions options;
  std::string reportPath;
  std::string tracePath;
  std::string traceFormat = "chrome";
  std::string command;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command += ' ';
    command += argv[i];
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "relb_localsim: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--family") {
        const std::string name = value();
        const auto family = relb::local::familyFromName(name);
        if (!family) {
          std::cerr << "relb_localsim: unknown family '" << name << "'\n";
          return usage(std::cerr, 2);
        }
        options.family = *family;
      } else if (arg == "--nodes") {
        options.nodes = std::stoull(value());
      } else if (arg == "--max-degree") {
        options.maxDegree = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--algo") {
        const std::string name = value();
        const auto algo = relb::local::algoFromName(name);
        if (!algo) {
          std::cerr << "relb_localsim: unknown algo '" << name << "'\n";
          return usage(std::cerr, 2);
        }
        options.algo = *algo;
      } else if (arg == "--seed") {
        options.seed = std::stoull(value());
      } else if (arg == "--threads") {
        options.numThreads = std::stoi(value());
      } else if (arg == "--no-verify") {
        options.verify = false;
      } else if (arg == "--report") {
        reportPath = value();
      } else if (arg == "--trace") {
        tracePath = value();
      } else if (arg == "--trace-format") {
        traceFormat = value();
        if (traceFormat != "chrome" && traceFormat != "text") {
          std::cerr << "relb_localsim: --trace-format must be 'chrome' or "
                       "'text'\n";
          return 2;
        }
      } else {
        std::cerr << "relb_localsim: unknown flag '" << arg << "'\n";
        return usage(std::cerr, 2);
      }
    } catch (const std::exception&) {
      std::cerr << "relb_localsim: bad value for " << arg << "\n";
      return 2;
    }
  }

  // Observability wiring, same shape as the driver's: sinks on the global
  // tracer, a span aggregator when a report is requested, and a finalize
  // path every exit goes through.
  auto& tracer = relb::obs::Tracer::global();
  std::shared_ptr<relb::obs::TextSink> text;
  std::shared_ptr<relb::obs::ChromeTraceSink> chrome;
  std::shared_ptr<relb::obs::SpanAggregator> aggregator;
  if (!tracePath.empty()) {
    if (traceFormat == "chrome") {
      chrome = std::make_shared<relb::obs::ChromeTraceSink>(tracePath);
      tracer.addSink(chrome);
    } else {
      text = std::make_shared<relb::obs::TextSink>();
      tracer.addSink(text);
    }
  }
  if (!reportPath.empty()) {
    aggregator = std::make_shared<relb::obs::SpanAggregator>();
    tracer.addSink(aggregator);
  }
  const auto start = std::chrono::steady_clock::now();

  int code = 0;
  try {
    std::cout << "family: " << relb::local::familyName(options.family)
              << "  algo: " << relb::local::algoName(options.algo)
              << "  seed: " << options.seed
              << "  threads: " << relb::util::resolveThreadCount(
                                      options.numThreads)
              << "\n";
    const relb::local::SimResult result = relb::local::runSim(options);
    std::cout << "nodes: " << result.nodes
              << "  half-edges: " << result.halfEdges
              << "  max-degree: " << result.maxDegree
              << "  graph-mib: " << (result.graphBytes >> 20) << "\n"
              << result.summary() << "\n";
  } catch (const relb::re::Error& e) {
    std::cerr << "relb_localsim: " << e.what() << "\n";
    code = 1;
  }

  const std::int64_t totalMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  try {
    tracer.flush();  // the chrome sink writes its file here
    if (text != nullptr) {
      std::ofstream file(tracePath, std::ios::binary);
      file << text->render();
      if (!file) {
        throw relb::re::Error("cannot write trace to '" + tracePath + "'");
      }
    }
    if (!tracePath.empty()) {
      std::cout << "trace (" << traceFormat << ") written to " << tracePath
                << "\n";
    }
    if (aggregator != nullptr) {
      relb::obs::RunReport report = relb::obs::buildRunReport(
          *aggregator, relb::obs::Registry::global());
      // The simulator's root phases are the local.build / local.algo /
      // local.verify spans; per-round spans nest below them and stay in
      // the all-spans table.
      std::erase_if(report.phases, [](const relb::obs::RunReport::Row& row) {
        return row.name.rfind("local.", 0) != 0;
      });
      report.command = command;
      report.totalWallMicros = totalMicros;
      report.threads = relb::util::resolveThreadCount(options.numThreads);
      report.opsWalked.push_back(relb::local::algoName(options.algo));
      relb::obs::saveRunReport(reportPath, report);
      std::cout << "run report written to " << reportPath << "\n";
    }
  } catch (const relb::re::Error& e) {
    std::cerr << "relb_localsim: observability error: " << e.what() << "\n";
    if (code == 0) code = 1;
  }
  tracer.clearSinks();
  return code;
}
