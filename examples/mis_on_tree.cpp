// MIS on trees: runs Luby's randomized algorithm and the deterministic
// coloring-based algorithm on random trees, verifies both, and reports
// round counts next to the paper's lower bound.
//
//   ./mis_on_tree [n] [maxDegree] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>

#include "algos/domset.hpp"
#include "algos/luby.hpp"
#include "core/sequence.hpp"
#include "local/verify.hpp"

int main(int argc, char** argv) {
  using namespace relb;
  const int n = argc > 1 ? std::atoi(argv[1]) : 2000;
  const int maxDegree = argc > 2 ? std::atoi(argv[2]) : 8;
  const unsigned seed = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 1;

  std::mt19937 rng(seed);
  const local::Graph g = local::randomTree(n, maxDegree, rng);
  std::cout << "random tree: n = " << g.numNodes()
            << ", max degree = " << g.maxDegree() << "\n\n";

  // Randomized: Luby.
  const auto luby = algos::lubyMis(g, rng);
  std::cout << "Luby MIS:           " << luby.phases << " phases ("
            << luby.rounds << " rounds), valid = "
            << (local::isMaximalIndependentSet(g, luby.inSet) ? "yes" : "no")
            << ", |S| = "
            << std::count(luby.inSet.begin(), luby.inSet.end(), true) << "\n";

  // Deterministic: Linial coloring + class sweep (O(Delta^2 + log* n)).
  const auto det = algos::misFromColoring(g);
  std::cout << "coloring-sweep MIS: " << det.totalRounds() << " rounds ("
            << det.roundsColoring << " coloring + " << det.roundsSweep
            << " sweep), valid = "
            << (local::isMaximalIndependentSet(g, det.inSet) ? "yes" : "no")
            << ", |S| = "
            << std::count(det.inSet.begin(), det.inSet.end(), true) << "\n";

  // Sequential baseline.
  const auto greedy = algos::greedyMis(g);
  std::cout << "greedy (seq.) MIS:  |S| = "
            << std::count(greedy.begin(), greedy.end(), true) << "\n\n";

  // The paper's lower bound at this degree.
  const auto t = core::pnLowerBoundRounds(g.maxDegree(), 0);
  std::cout << "paper lower bound (PN model, k = 0): " << t
            << " rounds  [Omega(log Delta) = Omega("
            << std::log2(static_cast<double>(g.maxDegree())) << ")]\n";
  return 0;
}
